package core

import (
	"context"
	"hash/fnv"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/img"
)

// meshFingerprint hashes the final mesh's geometry: every final cell's
// four vertex positions, in list order. With Workers=1 the refinement
// is fully deterministic, so two identical runs must produce identical
// fingerprints.
func meshFingerprint(res *Result) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	write := func(f float64) {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf)
	}
	for _, ch := range res.Final {
		c := res.Mesh.Cells.At(ch)
		for _, vh := range c.V {
			p := res.Mesh.Pos(vh)
			write(p.X)
			write(p.Y)
			write(p.Z)
		}
	}
	return h.Sum64()
}

// TestSessionWarmRunDeterministic is the acceptance gate of the warm
// path: a warm re-Run on the same Session must be bit-identical to the
// cold run under the same (sequential) configuration — same element
// count, same geometry, same quality stats.
func TestSessionWarmRunDeterministic(t *testing.T) {
	im := img.SpherePhantom(32)
	s, err := NewSession(Config{Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cold, err := s.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	coldN := cold.Elements()
	coldFP := meshFingerprint(cold)
	coldQ := cold.Quality()

	for i := 0; i < 2; i++ {
		warm, err := s.Run(context.Background(), im)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Elements() != coldN {
			t.Fatalf("warm run %d: %d elements, cold had %d", i, warm.Elements(), coldN)
		}
		if fp := meshFingerprint(warm); fp != coldFP {
			t.Fatalf("warm run %d: fingerprint %x, cold %x — warm path is not bit-identical", i, fp, coldFP)
		}
		if q := warm.Quality(); q != coldQ {
			t.Fatalf("warm run %d: quality stats %+v, cold %+v", i, q, coldQ)
		}
		if warm.Stats.DanglingPoorCount != 0 {
			t.Fatalf("warm run %d: dangling poor count %d", i, warm.Stats.DanglingPoorCount)
		}
	}
	st := s.Stats()
	if st.Runs != 3 || st.WarmRuns != 2 || st.WarmEDTHits != 2 {
		t.Errorf("session stats %+v, want 3 runs / 2 warm / 2 EDT hits", st)
	}
}

// TestSessionWarmMatchesColdSession checks warm-vs-cold across session
// boundaries too: a second session's cold run matches the first
// session's warm run.
func TestSessionWarmMatchesColdSession(t *testing.T) {
	im := img.SpherePhantom(24)
	cfg := Config{Workers: 1, LivelockTimeout: time.Minute}

	s1, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if _, err := s1.Run(context.Background(), im); err != nil {
		t.Fatal(err)
	}
	warm, err := s1.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cold, err := s2.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if meshFingerprint(warm) != meshFingerprint(cold) {
		t.Fatal("warm run differs from an independent cold run")
	}
}

// TestSessionWarmAllocReduction measures the point of the session: a
// warm run must allocate far less than a cold one. The ISSUE gate is
// >= 30% fewer allocations; this asserts the same with headroom for
// timer/runtime noise.
func TestSessionWarmAllocReduction(t *testing.T) {
	im := img.SpherePhantom(32)
	cfg := Config{Workers: 1, LivelockTimeout: time.Minute}

	mallocs := func(f func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}

	var coldAllocs uint64
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	coldAllocs = mallocs(func() {
		if _, err := s.Run(context.Background(), im); err != nil {
			t.Fatal(err)
		}
	})
	// Second run warms every path; measure the third.
	if _, err := s.Run(context.Background(), im); err != nil {
		t.Fatal(err)
	}
	warmAllocs := mallocs(func() {
		if _, err := s.Run(context.Background(), im); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("cold: %d mallocs, warm: %d mallocs (%.1f%%)",
		coldAllocs, warmAllocs, 100*float64(warmAllocs)/float64(coldAllocs))
	if float64(warmAllocs) > 0.7*float64(coldAllocs) {
		t.Errorf("warm run allocates %d, cold %d — less than 30%% saved", warmAllocs, coldAllocs)
	}
}

// TestSessionShapeChange re-runs one session across images of
// different shapes and deltas; every run must produce a valid result
// (grids and mesh rebuild as needed).
func TestSessionShapeChange(t *testing.T) {
	s, err := NewSession(Config{Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, im := range []*img.Image{
		img.SpherePhantom(24),
		img.SpherePhantom(32),
		img.TorusPhantom(24),
		img.SpherePhantom(24),
	} {
		res, err := s.Run(context.Background(), im)
		if err != nil {
			t.Fatal(err)
		}
		if res.Elements() == 0 {
			t.Fatal("empty final mesh")
		}
		if res.Stats.DanglingPoorCount != 0 {
			t.Fatalf("dangling poor count %d", res.Stats.DanglingPoorCount)
		}
		if topo := res.Topology(); !topo.Closed {
			t.Fatalf("boundary not closed: %v", topo)
		}
	}
}

// TestSessionWarmFaultStorm drives two consecutive runs of one session
// through the PR-1 fault storm: the warm path must preserve the whole
// failure model (recovered panics, degraded status, balanced
// bookkeeping).
func TestSessionWarmFaultStorm(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed: 7,
		Rates: map[faultinject.Point]float64{
			faultinject.LockDeny:    0.02,
			faultinject.WorkerPanic: 0.05,
			faultinject.DropSteal:   0.25,
		},
		MaxFires: map[faultinject.Point]int64{faultinject.WorkerPanic: 20},
		After: map[faultinject.Point]int64{
			faultinject.WorkerPanic: 20,
			faultinject.LockDeny:    500,
		},
	})
	defer faultinject.Enable(inj)()

	im := img.SpherePhantom(32)
	s, err := NewSession(Config{
		Workers:         4,
		PanicBudget:     -1,
		LivelockTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 2; i++ {
		res, err := s.Run(context.Background(), im)
		if err != nil {
			t.Fatal(err)
		}
		if res.Elements() == 0 {
			t.Fatalf("run %d: empty final mesh", i)
		}
		if res.Stats.DanglingPoorCount != 0 {
			t.Fatalf("run %d: dangling poor count %d", i, res.Stats.DanglingPoorCount)
		}
		if topo := res.Topology(); topo.BorderEdges != 0 {
			t.Fatalf("run %d: boundary has %d border edges", i, topo.BorderEdges)
		}
	}
	if inj.Fired(faultinject.WorkerPanic) == 0 {
		t.Fatal("storm injected no panics; the test exercised nothing")
	}
}

// TestSessionCancellation checks that a context passed to Run cancels
// a warm run just like a cold one.
func TestSessionCancellation(t *testing.T) {
	im := img.SpherePhantom(48)
	s, err := NewSession(Config{Workers: 2, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background(), im); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the run must abort promptly
	res, err := s.Run(ctx, im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusAborted {
		t.Fatalf("status %v, want aborted", res.Status)
	}
	// The session must remain usable after an aborted run.
	res, err = s.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCompleted {
		t.Fatalf("status %v after recovery run, want completed", res.Status)
	}
}

// TestSessionLifecycle covers construction-time validation, Close
// semantics and the EDT cache invalidation hook.
func TestSessionLifecycle(t *testing.T) {
	if _, err := NewSession(Config{ContentionManager: "bogus"}); err == nil {
		t.Error("bad contention manager accepted at NewSession")
	}
	if _, err := NewSession(Config{Balancer: "bogus"}); err == nil {
		t.Error("bad balancer accepted at NewSession")
	}
	if _, err := NewSession(Config{Delta: -1}); err == nil {
		t.Error("negative Delta accepted at NewSession")
	}

	s, err := NewSession(Config{Workers: 1, LivelockTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), nil); err == nil {
		t.Error("nil image accepted")
	}

	im := img.SpherePhantom(16)
	res, err := s.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}

	s.Invalidate()
	if _, err := s.Run(context.Background(), im); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WarmEDTHits != 0 {
		t.Errorf("EDT cache hit after Invalidate: %+v", st)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if _, err := s.Run(context.Background(), im); err == nil {
		t.Error("Run on closed session succeeded")
	}
	// The last result's mesh must survive Close.
	if res.Elements() == 0 || res.Mesh.NumVerts() == 0 {
		t.Error("result invalidated by Close")
	}
}
