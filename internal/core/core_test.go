package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/img"
)

// runSphere meshes a small sphere phantom with the given options.
func runSphere(t *testing.T, n int, workers int, cmName, balName string) *Result {
	t.Helper()
	cfg := Config{
		Image:             img.SpherePhantom(n),
		Workers:           workers,
		ContentionManager: cmName,
		Balancer:          balName,
		LivelockTimeout:   30 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Livelocked {
		t.Fatalf("livelock watchdog fired")
	}
	return res
}

func TestRunSphereSequential(t *testing.T) {
	res := runSphere(t, 24, 1, "local", "hws")
	if res.Elements() == 0 {
		t.Fatal("empty final mesh")
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("final mesh invalid: %v", err)
	}
	if res.Stats.Inserts == 0 {
		t.Error("no insertions recorded")
	}
	t.Logf("elements=%d inserts=%d removals=%d rules=%v",
		res.Elements(), res.Stats.Inserts, res.Stats.Removals, res.Stats.RuleCounts)
}

func TestRunSphereParallel(t *testing.T) {
	res := runSphere(t, 32, 4, "local", "hws")
	if res.Elements() == 0 {
		t.Fatal("empty final mesh")
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("final mesh invalid: %v", err)
	}
}

func TestFinalMeshInsideObject(t *testing.T) {
	res := runSphere(t, 24, 2, "local", "hws")
	im := res.Config.Image
	for _, h := range res.Final {
		c := res.Mesh.Cells.At(h)
		if c.Dead() {
			t.Fatal("dead cell in final mesh")
		}
		if im.LabelAt(c.CC) == 0 {
			t.Fatal("final cell circumcenter outside object")
		}
	}
}

func TestFinalMeshVolume(t *testing.T) {
	// The union of final cells should approximate the sphere volume.
	n := 32
	res := runSphere(t, n, 2, "local", "hws")
	var vol float64
	for _, h := range res.Final {
		c := res.Mesh.Cells.At(h)
		vol += geom.TetraVolume(
			res.Mesh.Pos(c.V[0]), res.Mesh.Pos(c.V[1]),
			res.Mesh.Pos(c.V[2]), res.Mesh.Pos(c.V[3]))
	}
	r := 0.35 * float64(n)
	want := 4.0 / 3.0 * math.Pi * r * r * r
	if math.Abs(vol-want)/want > 0.15 {
		t.Errorf("mesh volume %.0f vs sphere volume %.0f (>15%% off)", vol, want)
	}
}

func TestRadiusEdgeBound(t *testing.T) {
	res := runSphere(t, 24, 2, "local", "hws")
	worst := 0.0
	for _, h := range res.Final {
		c := res.Mesh.Cells.At(h)
		ratio := geom.RadiusEdgeRatio(
			res.Mesh.Pos(c.V[0]), res.Mesh.Pos(c.V[1]),
			res.Mesh.Pos(c.V[2]), res.Mesh.Pos(c.V[3]))
		if ratio > worst {
			worst = ratio
		}
	}
	// The provable bound is 2; allow numerical slack (paper Section 7:
	// "due to numerical errors, these bounds might be smaller in
	// practice than what theory suggests").
	if worst > 2.5 {
		t.Errorf("worst radius-edge ratio %.3f exceeds bound", worst)
	}
	t.Logf("worst radius-edge ratio: %.3f", worst)
}

func TestDeltaControlsMeshSize(t *testing.T) {
	im := img.SpherePhantom(32)
	small, err := Run(Config{Image: im, Delta: 2, Workers: 2, LivelockTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(Config{Image: im, Delta: 4, Workers: 2, LivelockTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if small.Elements() <= large.Elements() {
		t.Errorf("smaller delta gave %d elements, larger delta %d",
			small.Elements(), large.Elements())
	}
}

func TestSizeFunc(t *testing.T) {
	im := img.SpherePhantom(32)
	uniform, err := Run(Config{
		Image: im, Workers: 2,
		SizeFunc:        func(geom.Vec3) float64 { return 3.0 },
		LivelockTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(Config{Image: im, Workers: 2, LivelockTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Elements() <= free.Elements() {
		t.Errorf("size function did not densify: %d vs %d", uniform.Elements(), free.Elements())
	}
	if uniform.Stats.RuleCounts[R5] == 0 {
		t.Error("R5 never fired with a finite size function")
	}
}

func TestRemovalsHappen(t *testing.T) {
	res := runSphere(t, 32, 2, "local", "hws")
	if res.Stats.RuleCounts[R6] == 0 {
		t.Skip("no R6 removals on this input (acceptable but unexpected)")
	}
	if res.Stats.Removals != res.Stats.RuleCounts[R6] {
		t.Errorf("Removals=%d R6=%d", res.Stats.Removals, res.Stats.RuleCounts[R6])
	}
}

func TestDisableRemovals(t *testing.T) {
	im := img.SpherePhantom(24)
	res, err := Run(Config{
		Image: im, Workers: 2, DisableRemovals: true,
		LivelockTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Removals != 0 {
		t.Errorf("removals happened despite DisableRemovals: %d", res.Stats.Removals)
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("mesh invalid without removals: %v", err)
	}
}

func TestAllContentionManagers(t *testing.T) {
	for _, name := range []string{"aggressive", "random", "global", "local"} {
		t.Run(name, func(t *testing.T) {
			res := runSphere(t, 20, 3, name, "hws")
			if res.Elements() == 0 {
				t.Fatal("empty mesh")
			}
			if err := res.Mesh.Check(); err != nil {
				t.Fatalf("mesh invalid: %v", err)
			}
		})
	}
}

func TestBothBalancers(t *testing.T) {
	for _, name := range []string{"rws", "hws"} {
		t.Run(name, func(t *testing.T) {
			res := runSphere(t, 20, 3, "local", name)
			if res.Elements() == 0 {
				t.Fatal("empty mesh")
			}
		})
	}
}

func TestMultiLabelRun(t *testing.T) {
	im := img.AbdominalPhantom(32, 32, 24)
	res, err := Run(Config{Image: im, Workers: 4, LivelockTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements() == 0 {
		t.Fatal("empty mesh")
	}
	if err := res.Mesh.Check(); err != nil {
		t.Fatalf("mesh invalid: %v", err)
	}
	// The final mesh must contain cells in several tissues.
	labels := map[img.Label]int{}
	for _, h := range res.Final {
		labels[im.LabelAt(res.Mesh.Cells.At(h).CC)]++
	}
	if len(labels) < 3 {
		t.Errorf("final mesh covers only %d labels: %v", len(labels), labels)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := Run(Config{Image: img.SpherePhantom(8), ContentionManager: "bogus"}); err == nil {
		t.Error("bogus CM accepted")
	}
	if _, err := Run(Config{Image: img.SpherePhantom(8), Balancer: "bogus"}); err == nil {
		t.Error("bogus balancer accepted")
	}
	if _, err := Run(Config{Image: img.SpherePhantom(8), Delta: -1}); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestIsoVertexSpacing(t *testing.T) {
	// Committed isosurface samples must respect ~δ spacing (allowing
	// the bounded oversampling of concurrent commits and R3's δ/4).
	res := runSphere(t, 24, 2, "local", "hws")
	var iso []geom.Vec3
	res.Mesh.LiveVerts(func(_ arena.Handle, v *delaunay.Vertex) {
		if v.Kind == delaunay.KindIso {
			iso = append(iso, v.Pos)
		}
	})
	delta := res.Config.Delta
	tooClose := 0
	for i := 0; i < len(iso); i++ {
		for j := i + 1; j < len(iso); j++ {
			if iso[i].Dist(iso[j]) < delta/4 {
				tooClose++
			}
		}
	}
	if tooClose > len(iso)/10 {
		t.Errorf("%d of %d iso samples closer than δ/4", tooClose, len(iso))
	}
}
