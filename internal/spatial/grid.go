// Package spatial provides a concurrent uniform hash grid over 3D
// points, used by the refiner for the δ-sparsity check on isosurface
// samples (rule R1) and for locating circumcenters near a new
// isosurface vertex (rule R6).
package spatial

import (
	"math"
	"sync"

	"repro/internal/geom"
)

// Grid buckets points by cells of a fixed size. Add and the queries
// may be called concurrently; each bucket is independently locked.
// Entries are never removed — callers that delete points (R6) filter
// stale ids themselves.
type Grid struct {
	lo         geom.Vec3
	inv        float64 // 1 / cell size
	nx, ny, nz int
	buckets    []bucket
}

type bucket struct {
	mu  sync.Mutex
	ids []uint32
	pts []geom.Vec3
}

// NewGrid covers the world box [lo, hi] with cells of the given size
// (points outside are clamped to border cells).
func NewGrid(lo, hi geom.Vec3, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("spatial: non-positive cell size")
	}
	span := hi.Sub(lo)
	nx := int(math.Ceil(span.X/cellSize)) + 1
	ny := int(math.Ceil(span.Y/cellSize)) + 1
	nz := int(math.Ceil(span.Z/cellSize)) + 1
	return &Grid{
		lo: lo, inv: 1 / cellSize,
		nx: nx, ny: ny, nz: nz,
		buckets: make([]bucket, nx*ny*nz),
	}
}

func (g *Grid) clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

func (g *Grid) cellOf(p geom.Vec3) (int, int, int) {
	d := p.Sub(g.lo)
	return g.clamp(int(d.X*g.inv), g.nx),
		g.clamp(int(d.Y*g.inv), g.ny),
		g.clamp(int(d.Z*g.inv), g.nz)
}

func (g *Grid) bucketAt(i, j, k int) *bucket {
	return &g.buckets[(k*g.ny+j)*g.nx+i]
}

// Add inserts point p with an opaque id.
func (g *Grid) Add(p geom.Vec3, id uint32) {
	i, j, k := g.cellOf(p)
	b := g.bucketAt(i, j, k)
	b.mu.Lock()
	b.ids = append(b.ids, id)
	b.pts = append(b.pts, p)
	b.mu.Unlock()
}

// forBuckets visits the buckets overlapping the ball (p, r).
func (g *Grid) forBuckets(p geom.Vec3, r float64, fn func(*bucket) bool) {
	lo := p.Sub(geom.Vec3{X: r, Y: r, Z: r})
	hi := p.Add(geom.Vec3{X: r, Y: r, Z: r})
	i0, j0, k0 := g.cellOf(lo)
	i1, j1, k1 := g.cellOf(hi)
	for k := k0; k <= k1; k++ {
		for j := j0; j <= j1; j++ {
			for i := i0; i <= i1; i++ {
				if !fn(g.bucketAt(i, j, k)) {
					return
				}
			}
		}
	}
}

// AnyWithin reports whether any stored point lies within distance r of
// p.
func (g *Grid) AnyWithin(p geom.Vec3, r float64) bool {
	r2 := r * r
	found := false
	g.forBuckets(p, r, func(b *bucket) bool {
		b.mu.Lock()
		for _, q := range b.pts {
			if q.Dist2(p) <= r2 {
				found = true
				break
			}
		}
		b.mu.Unlock()
		return !found
	})
	return found
}

// ForEachWithin calls fn for every stored point within distance r of
// p; fn returning false stops the scan. The bucket lock is held during
// fn, so fn must not call back into the grid.
func (g *Grid) ForEachWithin(p geom.Vec3, r float64, fn func(id uint32, q geom.Vec3) bool) {
	r2 := r * r
	g.forBuckets(p, r, func(b *bucket) bool {
		b.mu.Lock()
		for i, q := range b.pts {
			if q.Dist2(p) <= r2 {
				if !fn(b.ids[i], q) {
					b.mu.Unlock()
					return false
				}
			}
		}
		b.mu.Unlock()
		return true
	})
}

// Fits reports whether this grid covers the box [lo, hi] at the given
// cell size with exactly the geometry NewGrid would choose — i.e.
// whether a Reset grid behaves identically to a freshly built one for
// those parameters. Clamping means behavior depends only on the
// origin, the cell size, and the bucket dimensions, which is what is
// compared.
func (g *Grid) Fits(lo, hi geom.Vec3, cellSize float64) bool {
	if cellSize <= 0 || g.lo != lo || g.inv != 1/cellSize {
		return false
	}
	span := hi.Sub(lo)
	return g.nx == int(math.Ceil(span.X/cellSize))+1 &&
		g.ny == int(math.Ceil(span.Y/cellSize))+1 &&
		g.nz == int(math.Ceil(span.Z/cellSize))+1
}

// Reset empties every bucket while keeping the bucket array and the
// per-bucket slice capacity, so a reused grid performs no steady-state
// allocation. It must not race with concurrent Adds or queries.
func (g *Grid) Reset() {
	for i := range g.buckets {
		b := &g.buckets[i]
		b.mu.Lock()
		b.ids = b.ids[:0]
		b.pts = b.pts[:0]
		b.mu.Unlock()
	}
}

// Len returns the number of stored points (approximate under
// concurrent Adds).
func (g *Grid) Len() int {
	n := 0
	for i := range g.buckets {
		b := &g.buckets[i]
		b.mu.Lock()
		n += len(b.ids)
		b.mu.Unlock()
	}
	return n
}
