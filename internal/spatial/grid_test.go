package spatial

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
)

func v3(x, y, z float64) geom.Vec3 { return geom.Vec3{X: x, Y: y, Z: z} }

func TestAddAndQuery(t *testing.T) {
	g := NewGrid(v3(0, 0, 0), v3(10, 10, 10), 1)
	g.Add(v3(5, 5, 5), 1)
	if !g.AnyWithin(v3(5.2, 5, 5), 0.5) {
		t.Error("nearby point not found")
	}
	if g.AnyWithin(v3(8, 8, 8), 0.5) {
		t.Error("distant point found")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestExactRadiusBoundary(t *testing.T) {
	g := NewGrid(v3(0, 0, 0), v3(10, 10, 10), 1)
	g.Add(v3(5, 5, 5), 1)
	if !g.AnyWithin(v3(6, 5, 5), 1.0) {
		t.Error("point at exactly r not included (<= semantics)")
	}
	if g.AnyWithin(v3(6.001, 5, 5), 1.0) {
		t.Error("point just past r included")
	}
}

func TestQueryAcrossBuckets(t *testing.T) {
	g := NewGrid(v3(0, 0, 0), v3(10, 10, 10), 1)
	// Points on both sides of a bucket boundary.
	g.Add(v3(0.99, 5, 5), 1)
	g.Add(v3(1.01, 5, 5), 2)
	count := 0
	g.ForEachWithin(v3(1, 5, 5), 0.1, func(id uint32, q geom.Vec3) bool {
		count++
		return true
	})
	if count != 2 {
		t.Errorf("found %d points across bucket boundary, want 2", count)
	}
}

func TestForEachWithinEarlyStop(t *testing.T) {
	g := NewGrid(v3(0, 0, 0), v3(10, 10, 10), 1)
	for i := 0; i < 10; i++ {
		g.Add(v3(5, 5, 5), uint32(i))
	}
	count := 0
	g.ForEachWithin(v3(5, 5, 5), 1, func(id uint32, q geom.Vec3) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
}

func TestOutOfRangePointsClamped(t *testing.T) {
	g := NewGrid(v3(0, 0, 0), v3(10, 10, 10), 1)
	g.Add(v3(-5, -5, -5), 1)
	g.Add(v3(20, 20, 20), 2)
	if !g.AnyWithin(v3(-5, -5, -5), 0.1) {
		t.Error("clamped low point lost")
	}
	if !g.AnyWithin(v3(20, 20, 20), 0.1) {
		t.Error("clamped high point lost")
	}
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGrid(v3(0, 0, 0), v3(10, 10, 10), 0.8)
	var pts []geom.Vec3
	for i := 0; i < 500; i++ {
		p := v3(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		pts = append(pts, p)
		g.Add(p, uint32(i))
	}
	for trial := 0; trial < 200; trial++ {
		q := v3(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		r := rng.Float64() * 2
		want := false
		wantCount := 0
		for _, p := range pts {
			if p.Dist(q) <= r {
				want = true
				wantCount++
			}
		}
		if got := g.AnyWithin(q, r); got != want {
			t.Fatalf("AnyWithin(%v, %v) = %v, want %v", q, r, got, want)
		}
		gotCount := 0
		g.ForEachWithin(q, r, func(uint32, geom.Vec3) bool { gotCount++; return true })
		if gotCount != wantCount {
			t.Fatalf("ForEachWithin count = %d, want %d", gotCount, wantCount)
		}
	}
}

func TestConcurrentAddQuery(t *testing.T) {
	g := NewGrid(v3(0, 0, 0), v3(100, 100, 100), 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				p := v3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
				if i%2 == 0 {
					g.Add(p, uint32(i))
				} else {
					g.AnyWithin(p, 3)
				}
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != 8*1000 {
		t.Errorf("Len = %d, want 8000", g.Len())
	}
}

func TestNewGridPanicsOnBadCellSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero cell size")
		}
	}()
	NewGrid(v3(0, 0, 0), v3(1, 1, 1), 0)
}
