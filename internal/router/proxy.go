package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// Handler returns the router's HTTP surface:
//
//	POST /v1/mesh      proxied to the key's owning backend
//	POST /v1/simulate  proxied to the key's owning backend
//	POST /v1/drain     planned drain of one backend (?backend=<base URL>)
//	GET  /healthz      router liveness
//	GET  /readyz       503 until at least one backend is healthy
//	GET  /v1/stats     JSON routing statistics
//	GET  /metrics      the router's own Prometheus registry
//
// Every router-originated 4xx/5xx carries the same JSON error
// envelope the backends emit; relayed backend responses pass through
// verbatim, including their X-Pi2md-Node header, so the client always
// learns which node actually served it.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mesh", r.handleProxy)
	mux.HandleFunc("POST /v1/simulate", r.handleProxy)
	mux.HandleFunc("POST /v1/drain", r.handleDrain)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", r.handleReadyz)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.reg.WritePrometheus(w)
	})
	return mux
}

// routePlan is a resolved proxy decision: the route identity, the bytes
// to send (nil means stream req.Body through once, no replay), and the
// response format. format is non-empty only for /v1/mesh — it marks the
// request as one whose result lives in the backends' snapshot caches,
// which is what arms the ETag table and the replica cache-only ladder.
type routePlan struct {
	routeKey string // imageKey + "|" + variant
	imageKey string
	variant  string
	format   string // "vtk"/"off" for /v1/mesh, "" for /v1/simulate
	raw      []byte // buffered body; nil on the streaming path
	stream   io.Reader
}

// handleProxy is the whole proxy path: derive the route key, answer a
// conditional request from the local ETag table when it can, join or
// start the key's cross-node flight, walk the candidate ladder
// (pinned backend, then ring replicas) — cache-only first when the
// key's last-known server is gone — stream the first response back, or
// answer 503 with the shared Retry-After policy when every candidate
// is unreachable.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	started := time.Now()
	r.mJobs.Inc()
	plan, ok := r.planRoute(w, req)
	if !ok {
		r.mFailed.Inc()
		return
	}

	// Router-side 304 short-circuit: when the client's If-None-Match
	// names the entity the table last saw for this key, answer locally —
	// no backend round trip, no body. The table is populated only from
	// real backend responses and drain announcements; the raw etag is
	// content-derived (CRC64 of the cached blob, keyed by the image's
	// SHA-256), so a match here is exactly the match the backend would
	// have computed. A stale entry fails the comparison and the request
	// forwards normally — the backend stays authoritative.
	if plan.format != "" {
		if inm := req.Header.Get("If-None-Match"); inm != "" {
			if ent, ok := r.etags.lookup(plan.routeKey); ok {
				entity := serve.EntityTag(ent.etag, plan.format)
				if serve.ETagMatch(inm, entity) {
					w.Header().Set("ETag", entity)
					w.WriteHeader(http.StatusNotModified)
					r.mETag304.Inc()
					r.mCompleted.Inc()
					r.mProxySeconds.Observe(time.Since(started).Seconds())
					return
				}
			}
		}
	}

	pinned, joined := r.joinFlight(plan.routeKey)
	defer r.leaveFlight(plan.routeKey)
	if joined {
		r.mFlightJoins.Inc()
	}

	// Every backend round trip beyond this request's first — fallback
	// forwards, extra cache probes, hedges — is accounted against the
	// shared retry budget, so a dying fleet sees bounded amplification
	// instead of Replicas× its offered load.
	att := &attempts{r: r}

	// Candidate ladder: the flight's pinned backend first — even if
	// membership changed under it, the in-flight run and its coalescing
	// flight live there — then the ring replicas in ownership order.
	cands := make([]string, 0, r.cfg.Replicas+1)
	if pinned != "" {
		cands = append(cands, pinned)
	}
	for _, c := range r.candidates(plan.routeKey) {
		if c != pinned {
			cands = append(cands, c)
		}
	}

	// Replica cache reads, trigger 1 — ejection of the key's server:
	// when the backend that last served this key is no longer healthy,
	// a survivor may still hold the result on disk. Probe the ladder
	// cache-only (a body-less GET) before paying a full re-mesh on the
	// new owner.
	probed := false
	if plan.format != "" {
		if ent, ok := r.etags.lookup(plan.routeKey); ok && ent.backend != "" && !r.isHealthy(ent.backend) {
			probed = true
			if r.tryCacheLadder(w, req, plan, cands, started, att) {
				return
			}
			// No survivor holds the blob (or the budget stopped the
			// walk): drop the entry — guarded on it still naming the
			// unhealthy backend — so the next request for this key goes
			// straight to the new owner instead of re-walking this
			// ladder forever.
			r.etags.dropIf(plan.routeKey, ent.backend)
		}
	}

	for i, cand := range cands {
		var body io.Reader
		switch {
		case plan.raw != nil:
			body = bytes.NewReader(plan.raw)
		case i == 0:
			body = plan.stream
		default:
			// Streaming path: the body is gone after the first attempt;
			// no replay is possible.
			r.answer503(w, "backend %s unreachable and request body is not replayable (streamed via %s)",
				cands[0], ImageKeyHeader)
			return
		}
		if !att.allow() {
			r.answer503(w, "retry budget exhausted routing key %s (stopped before attempt %d)",
				plan.routeKey, i+1)
			return
		}
		r.setPin(plan.routeKey, cand)
		resp, err := r.forward(req, cand, body, plan)
		if err != nil {
			if req.Context().Err() != nil {
				// The client went away or its deadline expired mid-attempt;
				// nobody is listening, so stop walking the ladder. This is
				// the backend tier's 499, not a capacity signal — no
				// Retry-After, and the backend is not blamed.
				r.answerCanceled(w, cand, err)
				return
			}
			r.mProxied.With(cand, outcomeTransportErr).Inc()
			r.noteTransportFailure(cand)
			// Replica cache reads, trigger 2 — transport failure: before
			// re-meshing on the remaining candidates, ask each (body-less,
			// cache-only) whether it already holds the result.
			if plan.format != "" && !probed {
				probed = true
				if r.tryCacheLadder(w, req, plan, cands[i+1:], started, att) {
					return
				}
			}
			continue
		}
		if r.relay(w, req, resp, cand, plan) {
			r.mCompleted.Inc()
		} else {
			r.mFailed.Inc()
		}
		r.mProxySeconds.Observe(time.Since(started).Seconds())
		return
	}
	r.answer503(w, "no reachable backend for key %s (tried %d)", plan.routeKey, len(cands))
}

// attempts is one request's retry-budget ledger: the first backend
// round trip is always free (it is the request, not a retry), every
// additional one must withdraw a token. Hedges go through allowHedge —
// a declined hedge is merely not fired (starved), while a declined
// allow stops the ladder and is counted as budget exhaustion.
type attempts struct {
	r    *Router
	used int
}

func (a *attempts) allow() bool {
	if a.used == 0 {
		a.used++
		return true
	}
	if a.r.budget != nil && !a.r.budget.withdraw() {
		a.r.mRetryExhausted.Inc()
		return false
	}
	a.used++
	a.r.mRetries.Inc()
	return true
}

// allowHedge pays for a speculative extra probe. Unlike allow it is
// never free — a hedge is by definition a second round trip for work
// already in flight.
func (a *attempts) allowHedge() bool {
	if a.r.budget != nil && !a.r.budget.withdraw() {
		return false
	}
	a.used++
	a.r.mRetries.Inc()
	return true
}

// tryCacheLadder walks candidates with cache-only probes — GET
// /v1/cache/{key}/{variant}, no request body — and relays the first
// hit: a backend that still holds the blob serves it (or validates the
// client's ETag to a 304) with zero re-meshing. Probes are hedged: if
// a rung is still unanswered after the observed probe-latency upper
// quantile, the next rung is fired in parallel and the first winner is
// relayed (a hedge-won 404 skips both rungs). A 404 cache_miss moves
// the ladder along — and drops the ETag entry when the missing backend
// is the very one the table attributed the key to, so a gone blob
// stops re-arming this ladder on every request. A transport failure
// feeds the health ledger like any other. Returns true when a response
// was relayed and the request is done.
func (r *Router) tryCacheLadder(w http.ResponseWriter, req *http.Request, plan routePlan, cands []string, started time.Time, att *attempts) bool {
	for i := 0; i < len(cands); i++ {
		if !att.allow() {
			return false
		}
		hedge := ""
		if i+1 < len(cands) {
			hedge = cands[i+1]
		}
		resp, winner, hedgeFired, err := r.probeCacheHedged(req, plan, cands[i], hedge, att)
		if hedgeFired {
			// Whatever the hedge's rung would have said is already
			// answered (or abandoned as the canceled loser): skip it.
			i++
		}
		if err != nil {
			if req.Context().Err() != nil {
				r.answerCanceled(w, winner, err)
				return true
			}
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			r.mReplicaMisses.Inc()
			r.etags.dropIf(plan.routeKey, winner)
			continue
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
			// A probe rejection other than a miss (bad key, draining-side
			// surprise): not a cache answer — fall back to the full path,
			// where the backend's own parser owns the verdict.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			continue
		}
		r.mReplicaHits.Inc()
		r.setPin(plan.routeKey, winner)
		if r.relay(w, req, resp, winner, plan) {
			r.mCompleted.Inc()
		} else {
			r.mFailed.Inc()
		}
		r.mProxySeconds.Observe(time.Since(started).Seconds())
		return true
	}
	return false
}

// probeResult is one cache probe's outcome in a hedged race. cancel
// releases the probe's context; for the winner it is deferred to body
// close, so the relay can stream the response before the context dies.
type probeResult struct {
	resp    *http.Response
	err     error
	backend string
	cancel  context.CancelFunc
}

// cancelOnClose ties a hedged winner's context to its body: relay's
// Close releases the context only after the last byte was streamed.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// hedgeDelay is how long a cache probe may stay unanswered before its
// hedge fires: the configured upper quantile of observed probe
// latency, floored by HedgeMinDelay until the histogram has enough
// samples to mean anything.
func (r *Router) hedgeDelay() time.Duration {
	if r.mProbeSeconds.Count() >= 16 {
		if q := r.mProbeSeconds.Quantile(r.cfg.HedgeQuantile); q > 0 {
			d := time.Duration(q * float64(time.Second))
			if d > r.cfg.HedgeMinDelay {
				return d
			}
		}
	}
	return r.cfg.HedgeMinDelay
}

// probeCacheHedged races a cache-only probe of primary against a
// hedge of the same probe at hedge, fired only if primary is still
// unanswered after hedgeDelay. The first backend to produce a response
// wins; the loser's probe is canceled and its body reaped off the
// request path. An early transport error from one side feeds the
// health ledger and the race waits for the other; only when every
// fired probe has failed does the call return an error. hedgeFired
// reports whether the hedge actually launched (its rung is consumed).
// Hedging is skipped — never failing the request — when no hedge
// candidate exists, hedging is disabled, the deadline is too close for
// a hedge to help, or the retry budget declines the extra probe.
func (r *Router) probeCacheHedged(req *http.Request, plan routePlan, primary, hedge string, att *attempts) (resp *http.Response, backend string, hedgeFired bool, err error) {
	results := make(chan probeResult, 2)
	launch := func(b string) {
		ctx, cancel := context.WithCancel(req.Context())
		go func() {
			resp, err := r.probeCacheCtx(ctx, b, req, plan)
			results <- probeResult{resp: resp, err: err, backend: b, cancel: cancel}
		}()
	}
	launch(primary)

	var timerC <-chan time.Time
	if hedge != "" && r.cfg.HedgeQuantile > 0 {
		delay := r.hedgeDelay()
		tooLate := false
		if dl, ok := req.Context().Deadline(); ok && time.Until(dl) < 2*delay {
			// By the time the hedge fires, half the remaining budget is
			// gone — the race cannot pay for itself.
			tooLate = true
		}
		if !tooLate {
			t := time.NewTimer(delay)
			defer t.Stop()
			timerC = t.C
		}
	}

	outstanding := 1
	backend = primary
	for {
		select {
		case <-timerC:
			timerC = nil
			if !att.allowHedge() {
				r.mHedged.With("starved").Inc()
				continue
			}
			launch(hedge)
			outstanding++
			hedgeFired = true
		case res := <-results:
			outstanding--
			backend = res.backend
			if res.err != nil {
				res.cancel()
				if req.Context().Err() == nil {
					r.noteTransportFailure(res.backend)
				}
				if outstanding > 0 {
					// The other side of the race may still answer.
					continue
				}
				return nil, res.backend, hedgeFired, res.err
			}
			if outstanding > 0 {
				// First winner takes the request; cancel the loser and
				// reap its eventual result off the request path.
				go func() {
					loser := <-results
					loser.cancel()
					if loser.resp != nil {
						io.Copy(io.Discard, io.LimitReader(loser.resp.Body, 4<<10))
						loser.resp.Body.Close()
					}
				}()
			}
			if hedgeFired {
				if res.backend == hedge {
					r.mHedged.With("won").Inc()
				} else {
					r.mHedged.With("lost").Inc()
				}
			}
			res.resp.Body = &cancelOnClose{ReadCloser: res.resp.Body, cancel: res.cancel}
			return res.resp, res.backend, hedgeFired, nil
		}
	}
}

// probeCacheCtx asks one backend for the plan's key from its result
// cache alone: a body-less GET against the cache probe endpoint, with
// the client's validators forwarded so a holder can answer 304 instead
// of shipping the mesh. ctx governs the round trip so a hedged loser
// can be canceled independently of the client request.
func (r *Router) probeCacheCtx(ctx context.Context, backend string, req *http.Request, plan routePlan) (*http.Response, error) {
	if faultinject.Fire(faultinject.ProxyDialFail) {
		return nil, errInjectedDial
	}
	// HedgeLoser stalls this probe (tests cap it to the primary with
	// MaxFires) so its hedge races ahead and wins.
	faultinject.Sleep(faultinject.HedgeLoser)
	u := backend + "/v1/cache/" + plan.imageKey
	if plan.variant != "" {
		u += "/" + url.PathEscape(plan.variant)
	}
	u += "?format=" + url.QueryEscape(plan.format)
	preq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if inm := req.Header.Get("If-None-Match"); inm != "" {
		preq.Header.Set("If-None-Match", inm)
	}
	start := time.Now()
	resp, err := r.cfg.Transport.RoundTrip(preq)
	if err == nil {
		r.mProbeSeconds.Observe(time.Since(start).Seconds())
	}
	return resp, err
}

// planRoute derives the (image key, variant) route key and the bytes
// to forward. On a local rejection (oversize, empty, unreadable body,
// malformed key header) it writes the error envelope and returns
// ok=false; the caller accounts the failure.
func (r *Router) planRoute(w http.ResponseWriter, req *http.Request) (routePlan, bool) {
	if hk := req.Header.Get(ImageKeyHeader); hk != "" {
		// Streaming path: the client vouched for the key, the router
		// never touches the body. The key must look exactly like what it
		// claims to be — a full SHA-256 in lowercase hex — or arbitrary
		// client bytes would become route keys, poisoning the pin table,
		// the ETag table, and metrics cardinality.
		if !serve.ValidImageKey(hk) {
			serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest,
				"%s must be 64 lowercase hex characters (the full SHA-256 of the image), got %d bytes",
				ImageKeyHeader, len(hk))
			return routePlan{}, false
		}
		// The variant comes from the query string (the only spec a
		// body-less router can see); a spec part in the body that
		// disagrees only costs routing locality, never correctness — the
		// backend re-derives everything.
		variant, format := "", "vtk"
		if spec, err := serve.MeshSpecFromQuery(req.URL.Query()); err == nil {
			variant, format = spec.Variant(), spec.Format
		}
		return routePlan{
			routeKey: hk + "|" + variant,
			imageKey: hk, variant: variant, format: format,
			stream: req.Body,
		}, true
	}

	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			serve.WriteError(w, http.StatusRequestEntityTooLarge, serve.CodeTooLarge,
				"request body exceeds the %d byte cap", r.cfg.MaxRequestBytes)
			return routePlan{}, false
		}
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, "reading body: %v", err)
		return routePlan{}, false
	}
	specJSON, image, err := serve.SplitSpecImage(req.Header.Get("Content-Type"), bytes.NewReader(raw))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, "reading body: %v", err)
		return routePlan{}, false
	}
	if len(image) == 0 {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest,
			"empty body: expected an NRRD label image")
		return routePlan{}, false
	}

	// The variant mirrors the backend's coalescing/cache identity. A
	// malformed spec routes under the empty variant and travels on to
	// the backend, whose own parser owns the precise 400.
	variant, format := "", ""
	if req.URL.Path == "/v1/simulate" {
		if specJSON != nil {
			if sp, err := serve.ParseSimSpec(specJSON); err == nil {
				variant = sp.Mesh.Variant()
			}
		}
	} else {
		format = "vtk"
		switch {
		case specJSON != nil:
			if sp, err := serve.ParseMeshSpec(specJSON); err == nil {
				variant, format = sp.Variant(), sp.Format
			}
		default:
			if sp, err := serve.MeshSpecFromQuery(req.URL.Query()); err == nil {
				variant, format = sp.Variant(), sp.Format
			}
		}
	}
	key := serve.ImageKey(image)
	return routePlan{
		routeKey: key + "|" + variant,
		imageKey: key, variant: variant, format: format,
		raw: raw,
	}, true
}

// forward sends one proxy attempt. The original request's context —
// and with it the client's deadline and disconnect — governs the
// round trip, so a backend never works for a caller that already gave
// up, and the backend's own deadline-based admission sees the true
// budget.
func (r *Router) forward(orig *http.Request, backend string, body io.Reader, plan routePlan) (*http.Response, error) {
	if faultinject.Fire(faultinject.ProxyDialFail) {
		return nil, errInjectedDial
	}
	req, err := http.NewRequestWithContext(orig.Context(), orig.Method,
		backend+orig.URL.RequestURI(), body)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, orig.Header)
	if plan.raw != nil {
		req.ContentLength = int64(len(plan.raw))
	} else {
		req.ContentLength = orig.ContentLength
	}
	return r.cfg.Transport.RoundTrip(req)
}

var errInjectedDial = errors.New("injected dial failure")

// relay streams a backend response to the client verbatim: status,
// headers (including X-Pi2md-Node, ETag, Retry-After), body. The copy
// error is part of the outcome: a backend dying mid-body is a
// transport failure (fed to the health ledger) even though the status
// line already went out, and a client disconnecting mid-body is
// client_gone — neither may count as a completed relay, or truncated
// responses would read as successes in every ledger. Returns true only
// when the full body was relayed; on success the response's entity tag
// is learned into the ETag table under the plan's route key.
func (r *Router) relay(w http.ResponseWriter, req *http.Request, resp *http.Response, backend string, plan routePlan) bool {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	if _, cerr := io.Copy(w, resp.Body); cerr != nil {
		if req.Context().Err() != nil {
			r.mProxied.With(backend, outcomeClientGone).Inc()
		} else {
			r.mProxied.With(backend, outcomeTransportErr).Inc()
			r.noteTransportFailure(backend)
		}
		return false
	}
	switch {
	case resp.StatusCode >= 500:
		r.mProxied.With(backend, outcomeUpstream5xx).Inc()
	case resp.StatusCode >= 400:
		r.mProxied.With(backend, outcomeUpstream4xx).Inc()
	default:
		r.mProxied.With(backend, outcomeOK).Inc()
		if r.budget != nil {
			// Successes are what earn retry allowance back.
			r.budget.deposit()
		}
		if plan.format != "" {
			if raw := rawETagFromHeader(resp.Header.Get("ETag")); raw != "" {
				r.etags.learn(plan.routeKey, raw, backend)
			}
		}
	}
	return true
}

// noteTransportFailure feeds a proxy-side connection failure into the
// same consecutive-failure ledger the prober uses, so a node that
// dies under traffic is ejected by the requests that discover it.
func (r *Router) noteTransportFailure(backend string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b := r.backends[backend]; b != nil {
		b.lastErr = "proxy transport failure"
		r.failLocked(b)
	}
}

// answer503 writes the router-originated unavailability envelope with
// the shared Retry-After policy: the estimate is the time the health
// loop needs to eject-and-detect (FailThreshold probe periods),
// jittered and clamped to [1,30]s exactly as the backends do.
func (r *Router) answer503(w http.ResponseWriter, format string, args ...any) {
	est := float64(r.cfg.FailThreshold) * r.cfg.ProbeInterval.Seconds()
	w.Header().Set("Retry-After",
		strconv.Itoa(serve.ClampRetryAfter(est, r.cfg.Jitter)))
	serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable, format, args...)
	r.mFailed.Inc()
}

// answerCanceled classifies a mid-proxy client cancellation exactly as
// the backend tier does: 499 canceled, no Retry-After — the client
// went away, telling it to retry is meaningless and a 503 would read
// as backend trouble in every dashboard. Counted failed (the job
// produced no relayed response) and not retryable; the backend is not
// blamed in the health ledger for a client that hung up.
func (r *Router) answerCanceled(w http.ResponseWriter, backend string, err error) {
	r.mProxied.With(backend, outcomeClientGone).Inc()
	serve.WriteError(w, serve.StatusClientClosedRequest, serve.CodeCanceled,
		"client canceled during proxy to %s: %v", backend, err)
	r.mFailed.Inc()
}

// drainResult is the POST /v1/drain response document.
type drainResult struct {
	Backend       string `json:"backend"`
	NodeID        string `json:"node_id,omitempty"`
	KeysPrewarmed int    `json:"keys_prewarmed"`
	Ejected       bool   `json:"ejected"`
}

// handleDrain is POST /v1/drain?backend=<base URL>: the planned-drain
// handoff. The router tells the backend to drain; the backend answers
// with its MRU cached keys; the router learns each (routeKey → etag,
// backend) into its ETag table — so conditional requests keep 304ing
// locally and the replica cache-only ladder fires for exactly the keys
// the drained node was warm for — and then ejects the node from the
// ring immediately instead of waiting for probes to notice the drain.
func (r *Router) handleDrain(w http.ResponseWriter, req *http.Request) {
	backend := strings.TrimRight(strings.TrimSpace(req.URL.Query().Get("backend")), "/")
	if backend != "" && !strings.Contains(backend, "://") {
		backend = "http://" + backend
	}
	r.mu.Lock()
	_, known := r.backends[backend]
	r.mu.Unlock()
	if !known {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest,
			"unknown backend %q: want one of the configured base URLs", backend)
		return
	}

	ctx, cancel := context.WithTimeout(req.Context(), 10*time.Second)
	defer cancel()
	dreq, err := http.NewRequestWithContext(ctx, http.MethodPost, backend+"/v1/drain", nil)
	if err != nil {
		serve.WriteError(w, http.StatusInternalServerError, serve.CodeInternal, "building drain request: %v", err)
		return
	}
	resp, err := r.cfg.Transport.RoundTrip(dreq)
	if err != nil {
		// Unreachable already: nothing to hand off, but the operator asked
		// for this node to be out of rotation — eject it anyway.
		r.noteTransportFailure(backend)
		r.ejectBackend(backend)
		r.mDrains.Inc()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(drainResult{Backend: backend, Ejected: true})
		return
	}
	defer resp.Body.Close()
	var ann struct {
		NodeID string `json:"node_id"`
		Keys   []struct {
			ImageKey string `json:"image_key"`
			Variant  string `json:"variant"`
			ETag     string `json:"etag"`
		} `json:"keys"`
	}
	if resp.StatusCode != http.StatusOK {
		serve.WriteError(w, http.StatusBadGateway, serve.CodeUnavailable,
			"backend %s answered drain with status %d", backend, resp.StatusCode)
		return
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&ann); err != nil {
		serve.WriteError(w, http.StatusBadGateway, serve.CodeUnavailable,
			"backend %s drain response unreadable: %v", backend, err)
		return
	}
	for _, k := range ann.Keys {
		r.etags.learn(k.ImageKey+"|"+k.Variant, k.ETag, backend)
	}
	r.ejectBackend(backend)
	r.mDrains.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(drainResult{
		Backend: backend, NodeID: ann.NodeID,
		KeysPrewarmed: len(ann.Keys), Ejected: true,
	})
}

// handleReadyz: the router is ready when it can route — at least one
// backend in the ring.
func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	n := r.ring.Size()
	r.mu.Unlock()
	if n == 0 {
		est := float64(r.cfg.FailThreshold) * r.cfg.ProbeInterval.Seconds()
		w.Header().Set("Retry-After",
			strconv.Itoa(serve.ClampRetryAfter(est, r.cfg.Jitter)))
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable,
			"no healthy backends")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

// Stats is the /v1/stats document.
type Stats struct {
	UptimeSeconds      float64        `json:"uptime_seconds"`
	Backends           []BackendStats `json:"backends"`
	RingMembers        []string       `json:"ring_members"`
	Rebalances         int64          `json:"ring_rebalances"`
	ProxiedJobs        int64          `json:"proxied_jobs"`
	CompletedJobs      int64          `json:"completed_jobs"`
	FailedJobs         int64          `json:"failed_jobs"`
	FlightJoins        int64          `json:"flight_joins"`
	ReplicaCacheHits   int64          `json:"replica_cache_hits"`
	ReplicaCacheMisses int64          `json:"replica_cache_misses"`
	ETag304s           int64          `json:"etag_304s"`
	ETagEntries        int            `json:"etag_entries"`
	PlannedDrains      int64          `json:"planned_drains"`
	Retries            int64          `json:"retries"`
	RetryExhausted     int64          `json:"retry_budget_exhausted"`
	RetryBudgetTokens  float64        `json:"retry_budget_tokens"`
	HedgedWon          int64          `json:"hedged_probes_won,omitempty"`
	HedgedLost         int64          `json:"hedged_probes_lost,omitempty"`
	HedgedStarved      int64          `json:"hedged_probes_starved,omitempty"`
	InflightKeys       []string       `json:"inflight_keys,omitempty"`
}

// BackendStats is one backend's health ledger snapshot.
type BackendStats struct {
	Name             string `json:"name"`
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Probes           int64  `json:"probes"`
	LastError        string `json:"last_error,omitempty"`
}

// Stats snapshots the router's routing state.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		UptimeSeconds:      time.Since(r.start).Seconds(),
		RingMembers:        r.ring.Members(),
		Rebalances:         r.mRebalances.Value(),
		ProxiedJobs:        r.mJobs.Value(),
		CompletedJobs:      r.mCompleted.Value(),
		FailedJobs:         r.mFailed.Value(),
		FlightJoins:        r.mFlightJoins.Value(),
		ReplicaCacheHits:   r.mReplicaHits.Value(),
		ReplicaCacheMisses: r.mReplicaMisses.Value(),
		ETag304s:           r.mETag304.Value(),
		PlannedDrains:      r.mDrains.Value(),
		Retries:            r.mRetries.Value(),
		RetryExhausted:     r.mRetryExhausted.Value(),
		HedgedWon:          r.mHedged.Value("won"),
		HedgedLost:         r.mHedged.Value("lost"),
		HedgedStarved:      r.mHedged.Value("starved"),
	}
	if r.budget != nil {
		st.RetryBudgetTokens = r.budget.balance()
	}
	for _, name := range r.order {
		b := r.backends[name]
		st.Backends = append(st.Backends, BackendStats{
			Name:             b.name,
			Healthy:          b.healthy,
			ConsecutiveFails: b.fails,
			Probes:           b.probes,
			LastError:        b.lastErr,
		})
	}
	r.mu.Unlock()
	st.ETagEntries = r.etags.len()
	st.InflightKeys = r.InflightKeys()
	return st
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Stats())
}

// hopByHop are the connection-scoped headers a proxy must not relay.
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// copyHeaders relays headers minus the connection-scoped ones: the
// static hop-by-hop set, plus — RFC 7230 §6.1 — any header named in the
// Connection header's own comma-separated value, which a peer uses to
// mark arbitrary headers as single-hop.
func copyHeaders(dst, src http.Header) {
	var named map[string]bool
	for _, v := range src.Values("Connection") {
		for _, tok := range strings.Split(v, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				if named == nil {
					named = make(map[string]bool)
				}
				named[http.CanonicalHeaderKey(tok)] = true
			}
		}
	}
	for k, vs := range src {
		ck := http.CanonicalHeaderKey(k)
		if hopByHop[ck] || named[ck] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
