package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// Handler returns the router's HTTP surface:
//
//	POST /v1/mesh      proxied to the key's owning backend
//	POST /v1/simulate  proxied to the key's owning backend
//	GET  /healthz      router liveness
//	GET  /readyz       503 until at least one backend is healthy
//	GET  /v1/stats     JSON routing statistics
//	GET  /metrics      the router's own Prometheus registry
//
// Every router-originated 4xx/5xx carries the same JSON error
// envelope the backends emit; relayed backend responses pass through
// verbatim, including their X-Pi2md-Node header, so the client always
// learns which node actually served it.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mesh", r.handleProxy)
	mux.HandleFunc("POST /v1/simulate", r.handleProxy)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", r.handleReadyz)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.reg.WritePrometheus(w)
	})
	return mux
}

// routePlan is a resolved proxy decision: the route key, the bytes to
// send (nil means stream req.Body through once, no replay), and
// whether fallback replay is possible.
type routePlan struct {
	routeKey string
	raw      []byte // buffered body; nil on the streaming path
	stream   io.Reader
}

// handleProxy is the whole proxy path: derive the route key, join or
// start the key's cross-node flight, walk the candidate ladder
// (pinned backend, then ring replicas), stream the first response
// back, or answer 503 with the shared Retry-After policy when every
// candidate is unreachable.
func (r *Router) handleProxy(w http.ResponseWriter, req *http.Request) {
	started := time.Now()
	r.mJobs.Inc()
	plan, ok := r.planRoute(w, req)
	if !ok {
		r.mFailed.Inc()
		return
	}

	pinned, joined := r.joinFlight(plan.routeKey)
	defer r.leaveFlight(plan.routeKey)
	if joined {
		r.mFlightJoins.Inc()
	}

	// Candidate ladder: the flight's pinned backend first — even if
	// membership changed under it, the in-flight run and its coalescing
	// flight live there — then the ring replicas in ownership order.
	cands := make([]string, 0, r.cfg.Replicas+1)
	if pinned != "" {
		cands = append(cands, pinned)
	}
	for _, c := range r.candidates(plan.routeKey) {
		if c != pinned {
			cands = append(cands, c)
		}
	}

	for i, cand := range cands {
		var body io.Reader
		switch {
		case plan.raw != nil:
			body = bytes.NewReader(plan.raw)
		case i == 0:
			body = plan.stream
		default:
			// Streaming path: the body is gone after the first attempt;
			// no replay is possible.
			r.answer503(w, "backend %s unreachable and request body is not replayable (streamed via %s)",
				cands[0], ImageKeyHeader)
			return
		}
		r.setPin(plan.routeKey, cand)
		resp, err := r.forward(req, cand, body, plan)
		if err != nil {
			if req.Context().Err() != nil {
				// The client went away or its deadline expired mid-attempt;
				// nobody is listening, so stop walking the ladder.
				r.mProxied.With(cand, outcomeTransportErr).Inc()
				r.answer503(w, "client gone during proxy to %s: %v", cand, err)
				return
			}
			r.mProxied.With(cand, outcomeTransportErr).Inc()
			r.noteTransportFailure(cand)
			continue
		}
		r.relay(w, resp, cand)
		r.mCompleted.Inc()
		r.mProxySeconds.Observe(time.Since(started).Seconds())
		return
	}
	r.answer503(w, "no reachable backend for key %s (tried %d)", plan.routeKey, len(cands))
}

// planRoute derives the (image key, variant) route key and the bytes
// to forward. On a local rejection (oversize, empty, unreadable body)
// it writes the error envelope and returns ok=false; the caller
// accounts the failure.
func (r *Router) planRoute(w http.ResponseWriter, req *http.Request) (routePlan, bool) {
	if hk := req.Header.Get(ImageKeyHeader); hk != "" {
		// Streaming path: the client vouched for the key, the router
		// never touches the body. The variant comes from the query
		// string (the only spec a body-less router can see); a spec
		// part in the body that disagrees only costs routing locality,
		// never correctness — the backend re-derives everything.
		variant := ""
		if spec, err := serve.MeshSpecFromQuery(req.URL.Query()); err == nil {
			variant = spec.Variant()
		}
		return routePlan{routeKey: hk + "|" + variant, stream: req.Body}, true
	}

	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			serve.WriteError(w, http.StatusRequestEntityTooLarge, serve.CodeTooLarge,
				"request body exceeds the %d byte cap", r.cfg.MaxRequestBytes)
			return routePlan{}, false
		}
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, "reading body: %v", err)
		return routePlan{}, false
	}
	specJSON, image, err := serve.SplitSpecImage(req.Header.Get("Content-Type"), bytes.NewReader(raw))
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest, "reading body: %v", err)
		return routePlan{}, false
	}
	if len(image) == 0 {
		serve.WriteError(w, http.StatusBadRequest, serve.CodeBadRequest,
			"empty body: expected an NRRD label image")
		return routePlan{}, false
	}

	// The variant mirrors the backend's coalescing/cache identity. A
	// malformed spec routes under the empty variant and travels on to
	// the backend, whose own parser owns the precise 400.
	variant := ""
	if req.URL.Path == "/v1/simulate" {
		if specJSON != nil {
			if sp, err := serve.ParseSimSpec(specJSON); err == nil {
				variant = sp.Mesh.Variant()
			}
		}
	} else {
		switch {
		case specJSON != nil:
			if sp, err := serve.ParseMeshSpec(specJSON); err == nil {
				variant = sp.Variant()
			}
		default:
			if sp, err := serve.MeshSpecFromQuery(req.URL.Query()); err == nil {
				variant = sp.Variant()
			}
		}
	}
	return routePlan{routeKey: serve.ImageKey(image) + "|" + variant, raw: raw}, true
}

// forward sends one proxy attempt. The original request's context —
// and with it the client's deadline and disconnect — governs the
// round trip, so a backend never works for a caller that already gave
// up, and the backend's own deadline-based admission sees the true
// budget.
func (r *Router) forward(orig *http.Request, backend string, body io.Reader, plan routePlan) (*http.Response, error) {
	if faultinject.Fire(faultinject.ProxyDialFail) {
		return nil, errInjectedDial
	}
	req, err := http.NewRequestWithContext(orig.Context(), orig.Method,
		backend+orig.URL.RequestURI(), body)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, orig.Header)
	if plan.raw != nil {
		req.ContentLength = int64(len(plan.raw))
	} else {
		req.ContentLength = orig.ContentLength
	}
	return r.cfg.Transport.RoundTrip(req)
}

var errInjectedDial = errors.New("injected dial failure")

// relay streams a backend response to the client verbatim: status,
// headers (including X-Pi2md-Node, ETag, Retry-After), body.
func (r *Router) relay(w http.ResponseWriter, resp *http.Response, backend string) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	switch {
	case resp.StatusCode >= 500:
		r.mProxied.With(backend, outcomeUpstream5xx).Inc()
	case resp.StatusCode >= 400:
		r.mProxied.With(backend, outcomeUpstream4xx).Inc()
	default:
		r.mProxied.With(backend, outcomeOK).Inc()
	}
}

// noteTransportFailure feeds a proxy-side connection failure into the
// same consecutive-failure ledger the prober uses, so a node that
// dies under traffic is ejected by the requests that discover it.
func (r *Router) noteTransportFailure(backend string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b := r.backends[backend]; b != nil {
		b.lastErr = "proxy transport failure"
		r.failLocked(b)
	}
}

// answer503 writes the router-originated unavailability envelope with
// the shared Retry-After policy: the estimate is the time the health
// loop needs to eject-and-detect (FailThreshold probe periods),
// jittered and clamped to [1,30]s exactly as the backends do.
func (r *Router) answer503(w http.ResponseWriter, format string, args ...any) {
	est := float64(r.cfg.FailThreshold) * r.cfg.ProbeInterval.Seconds()
	w.Header().Set("Retry-After",
		strconv.Itoa(serve.ClampRetryAfter(est, r.cfg.Jitter)))
	serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable, format, args...)
	r.mFailed.Inc()
}

// handleReadyz: the router is ready when it can route — at least one
// backend in the ring.
func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	n := r.ring.Size()
	r.mu.Unlock()
	if n == 0 {
		est := float64(r.cfg.FailThreshold) * r.cfg.ProbeInterval.Seconds()
		w.Header().Set("Retry-After",
			strconv.Itoa(serve.ClampRetryAfter(est, r.cfg.Jitter)))
		serve.WriteError(w, http.StatusServiceUnavailable, serve.CodeUnavailable,
			"no healthy backends")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

// Stats is the /v1/stats document.
type Stats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Backends      []BackendStats `json:"backends"`
	RingMembers   []string       `json:"ring_members"`
	Rebalances    int64          `json:"ring_rebalances"`
	ProxiedJobs   int64          `json:"proxied_jobs"`
	CompletedJobs int64          `json:"completed_jobs"`
	FailedJobs    int64          `json:"failed_jobs"`
	FlightJoins   int64          `json:"flight_joins"`
	InflightKeys  []string       `json:"inflight_keys,omitempty"`
}

// BackendStats is one backend's health ledger snapshot.
type BackendStats struct {
	Name             string `json:"name"`
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Probes           int64  `json:"probes"`
	LastError        string `json:"last_error,omitempty"`
}

// Stats snapshots the router's routing state.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		UptimeSeconds: time.Since(r.start).Seconds(),
		RingMembers:   r.ring.Members(),
		Rebalances:    r.mRebalances.Value(),
		ProxiedJobs:   r.mJobs.Value(),
		CompletedJobs: r.mCompleted.Value(),
		FailedJobs:    r.mFailed.Value(),
		FlightJoins:   r.mFlightJoins.Value(),
	}
	for _, name := range r.order {
		b := r.backends[name]
		st.Backends = append(st.Backends, BackendStats{
			Name:             b.name,
			Healthy:          b.healthy,
			ConsecutiveFails: b.fails,
			Probes:           b.probes,
			LastError:        b.lastErr,
		})
	}
	r.mu.Unlock()
	st.InflightKeys = r.InflightKeys()
	return st
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Stats())
}

// hopByHop are the connection-scoped headers a proxy must not relay.
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
