// Package router is the distributed meshing tier: a thin HTTP proxy
// that consistent-hashes the (image SHA-256, quality variant) key —
// the same identity the backends use for coalescing, circuit breakers,
// and the persistent result cache — onto a fleet of pi2md nodes, so
// repeat and coalescable traffic for an image always lands where its
// warm state (sessions, EDT transform cache, breakers, cached blobs)
// already lives.
//
// The layering mirrors the single-node design: Ring owns ownership
// math and nothing else; the health prober owns membership; Router
// owns routing, cross-node single-flight pinning, the streaming proxy
// with its replica-fallback ladder, and metrics. cmd/pi2mrouter is the
// daemon wrapping a Router in an http.Server.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint64
	member int32 // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a member list. Each
// member contributes vnodes virtual points; a key is owned by the
// member whose point follows the key's hash clockwise. Immutability
// keeps ownership deterministic and lets the Router swap rings
// atomically on membership change — lookups never see a half-updated
// ring.
type Ring struct {
	members []string // sorted, deduplicated
	vnodes  int
	points  []ringPoint // sorted by hash
}

// NewRing builds a ring over members with the given virtual-node count
// per member (vnodes <= 0 selects 128). Member order does not matter:
// the same set always builds the same ring, so every router instance
// agrees on ownership given the same healthy set.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	// Deduplicate: a member listed twice must not get double weight.
	uniq := sorted[:0]
	for i, m := range sorted {
		if i == 0 || m != sorted[i-1] {
			uniq = append(uniq, m)
		}
	}
	r := &Ring{members: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   ringHash(m + "#" + strconv.Itoa(v)),
				member: int32(mi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions between vnodes are broken by member index so
		// ownership stays deterministic regardless of input order.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// ringHash hashes a string position onto the ring: FNV-1a mixed
// through the splitmix64 finalizer. FNV alone clusters structured
// inputs ("host#1", "host#2", ...); the finalizer's avalanche spreads
// them, which the distribution-skew bound depends on.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (the same mixer the fault
// injector uses): full avalanche, cheap, dependency-free.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Members returns the ring's sorted member list (read-only).
func (r *Ring) Members() []string { return r.members }

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns up to n distinct members for key, owner first, then
// the members met walking the ring clockwise — the fallback ladder a
// router tries when the owner is unavailable. n is clamped to the
// member count.
func (r *Ring) Replicas(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	kh := ringHash(key)
	// First point with hash >= kh, wrapping at the end.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
