package router

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real route keys: hex image hash + variant.
		keys[i] = fmt.Sprintf("%064x|d=2.0;me=0", i*2654435761)
	}
	return keys
}

// TestRingDistributionSkew bounds load skew: for fleets of 3..16
// backends, every member's share of a large key population must stay
// within [0.5, 1.6]× the fair share. This is the property the vnode
// count and the mixed hash exist to provide; FNV-1a without the
// finalizer fails it badly on "host#i"-shaped vnode labels.
func TestRingDistributionSkew(t *testing.T) {
	keys := ringKeys(20000)
	for n := 3; n <= 16; n++ {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
		}
		r := NewRing(members, 128)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for _, m := range members {
			share := float64(counts[m])
			if share < 0.5*fair || share > 1.6*fair {
				t.Errorf("n=%d: member %s owns %.0f keys, fair share %.0f (skew %.2fx)",
					n, m, share, fair, share/fair)
			}
		}
	}
}

// TestRingMinimalMovementOnJoin bounds key movement when a member
// joins: going from n to n+1 members, at most (1/(n+1) + ε) of keys
// may change owner — the joiner's fair share plus slack. A modulo
// hash would move ~n/(n+1) of them; consistent hashing is the whole
// point of this ring.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	const eps = 0.08
	keys := ringKeys(20000)
	for n := 3; n <= 16; n++ {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
		}
		before := NewRing(members, 128)
		after := NewRing(append(members, "http://10.0.1.99:8080"), 128)
		moved := 0
		for _, k := range keys {
			if before.Owner(k) != after.Owner(k) {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		bound := 1.0/float64(n+1) + eps
		if frac > bound {
			t.Errorf("n=%d→%d: %.3f of keys moved, bound %.3f", n, n+1, frac, bound)
		}
		// Every moved key must have moved TO the joiner; movement between
		// surviving members would be gratuitous churn.
		for _, k := range keys {
			if b, a := before.Owner(k), after.Owner(k); b != a && a != "http://10.0.1.99:8080" {
				t.Fatalf("n=%d: key moved %s→%s, neither the joiner", n, b, a)
			}
		}
	}
}

// TestRingMinimalMovementOnLeave is the ejection direction: removing
// one of n members must move exactly that member's keys (≈1/n) and
// leave every other key's owner untouched — the property that lets a
// node kill re-home only the dead node's traffic.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	const eps = 0.08
	keys := ringKeys(20000)
	for n := 4; n <= 16; n++ {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
		}
		gone := members[n/2]
		before := NewRing(members, 128)
		after := NewRing(append(append([]string{}, members[:n/2]...), members[n/2+1:]...), 128)
		moved := 0
		for _, k := range keys {
			b, a := before.Owner(k), after.Owner(k)
			if b != a {
				moved++
				if b != gone {
					t.Fatalf("n=%d: key owned by surviving %s moved to %s", n, b, a)
				}
			}
		}
		frac := float64(moved) / float64(len(keys))
		if bound := 1.0/float64(n) + eps; frac > bound {
			t.Errorf("n=%d leave: %.3f of keys moved, bound %.3f", n, frac, bound)
		}
	}
}

// TestRingDeterministicOwnership: ownership is a pure function of the
// member SET — input order, duplicates, and rebuild count must not
// change it, or two routers in front of one fleet would disagree.
func TestRingDeterministicOwnership(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	ref := NewRing(members, 64)
	keys := ringKeys(2000)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if trial%2 == 1 {
			shuffled = append(shuffled, shuffled[0]) // duplicate must not double-weight
		}
		r := NewRing(shuffled, 64)
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d: key %s owned by %s, reference says %s", trial, k, got, want)
			}
		}
	}
}

// TestRingReplicas pins the fallback-ladder contract: owner first,
// distinct members, clamped to the member count, stable.
func TestRingReplicas(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(members, 64)
	for _, k := range ringKeys(500) {
		reps := r.Replicas(k, 5)
		if len(reps) != 3 {
			t.Fatalf("want all 3 members in ladder, got %v", reps)
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("ladder head %s is not the owner %s", reps[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("duplicate member %s in ladder %v", m, reps)
			}
			seen[m] = true
		}
	}
	if got := r.Replicas("k", 0); got != nil {
		t.Fatalf("n=0 ladder: %v", got)
	}
	empty := NewRing(nil, 64)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring owner: %q", got)
	}
}
