package router

import (
	"container/list"
	"strings"
	"sync"
)

// etagEntry is what the router remembers about one route key: the raw
// (format-less) etag of the cached result and the backend that last
// served or announced it. The table is never authoritative — it is
// learned opportunistically from relayed responses and drain
// announcements, bounded, and evicted LRU; a stale or missing entry
// only costs a normal forward, never a wrong answer, because the raw
// etag is a pure function of the cached blob's bytes and the image key
// is a content hash.
type etagEntry struct {
	key     string // route key: imageKey + "|" + variant
	etag    string // raw 16-hex CRC64, no quotes, no format suffix
	backend string // backend that last served/announced this key
}

// etagTable is the bounded LRU (routeKey → etagEntry) map behind the
// router's local 304 short-circuit and its replica-cache read trigger.
type etagTable struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used; values are *etagEntry
}

func newETagTable(capacity int) *etagTable {
	return &etagTable{
		cap: capacity,
		m:   make(map[string]*list.Element, capacity),
		lru: list.New(),
	}
}

// learn upserts the entry for key, refreshing recency and evicting the
// least recently used entry past the cap.
func (t *etagTable) learn(key, etag, backend string) {
	if key == "" || etag == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.m[key]; ok {
		e := el.Value.(*etagEntry)
		e.etag, e.backend = etag, backend
		t.lru.MoveToFront(el)
		return
	}
	t.m[key] = t.lru.PushFront(&etagEntry{key: key, etag: etag, backend: backend})
	for t.lru.Len() > t.cap {
		back := t.lru.Back()
		delete(t.m, back.Value.(*etagEntry).key)
		t.lru.Remove(back)
	}
}

// lookup returns a copy of key's entry, refreshing its recency.
func (t *etagTable) lookup(key string) (etagEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.m[key]
	if !ok {
		return etagEntry{}, false
	}
	t.lru.MoveToFront(el)
	return *el.Value.(*etagEntry), true
}

// dropIf removes key's entry only while it still names backend as the
// server — the staleness fix for a replica probe answered 404
// cache_miss by the very backend the table attributed the key to: the
// blob is gone (evicted, or the node restarted empty), so keeping the
// entry would re-arm the cache-only ladder on every subsequent request
// for a result nobody holds. The backend guard makes the drop safe
// against a concurrent learn from a fresher response: re-homed entries
// survive.
func (t *etagTable) dropIf(key, backend string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.m[key]; ok && el.Value.(*etagEntry).backend == backend {
		delete(t.m, key)
		t.lru.Remove(el)
	}
}

func (t *etagTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

// rawETagFromHeader extracts the raw (format-less) etag out of a
// response's entity tag: `"<16 hex>-<format>"`, weak or strong. It
// returns "" for anything that does not look exactly like the serving
// tier's tags, so junk headers can never populate the table.
func rawETagFromHeader(header string) string {
	t := strings.TrimSpace(header)
	t = strings.TrimPrefix(t, "W/")
	if len(t) < 2 || t[0] != '"' || t[len(t)-1] != '"' {
		return ""
	}
	t = t[1 : len(t)-1]
	dash := strings.LastIndexByte(t, '-')
	if dash != 16 {
		return ""
	}
	raw := t[:dash]
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return ""
		}
	}
	return raw
}
