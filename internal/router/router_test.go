package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// stubBackend is a minimal pi2md stand-in: /readyz always ready,
// /v1/mesh counts hits and echoes a per-backend node header, with an
// optional gate to hold requests in flight.
type stubBackend struct {
	ts   *httptest.Server
	hits atomic.Int64
	gate chan struct{} // non-nil: /v1/mesh blocks until closed
}

func newStubFleet(t *testing.T, n int) []*stubBackend {
	t.Helper()
	fleet := make([]*stubBackend, n)
	for i := range fleet {
		b := &stubBackend{}
		id := fmt.Sprintf("stub-%d", i)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "ready\n")
		})
		mux.HandleFunc("POST /", func(w http.ResponseWriter, r *http.Request) {
			b.hits.Add(1)
			if b.gate != nil {
				<-b.gate
			}
			io.Copy(io.Discard, r.Body)
			w.Header().Set(serve.NodeHeader, id)
			io.WriteString(w, "mesh\n")
		})
		b.ts = httptest.NewServer(mux)
		t.Cleanup(b.ts.Close)
		fleet[i] = b
	}
	return fleet
}

func fleetURLs(fleet []*stubBackend) []string {
	urls := make([]string, len(fleet))
	for i, b := range fleet {
		urls[i] = b.ts.URL
	}
	return urls
}

// partition is a RoundTripper that refuses connections to backends
// marked down — the test's network fault surface, shared by probes
// and proxying exactly as the real transport is.
type partition struct {
	mu   sync.Mutex
	down map[string]bool
}

func (p *partition) set(base string, isDown bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down == nil {
		p.down = map[string]bool{}
	}
	p.down[base] = isDown
}

func (p *partition) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	d := p.down[req.URL.Scheme+"://"+req.URL.Host]
	p.mu.Unlock()
	if d {
		return nil, errors.New("connection refused (test partition)")
	}
	return http.DefaultTransport.RoundTrip(req)
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Jitter == nil {
		cfg.Jitter = func() float64 { return 0.5 } // pin: no jitter in tests
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// probeAll drives one deterministic probe round.
func probeAll(r *Router, fleet []*stubBackend) {
	for _, b := range fleet {
		r.ProbeOnce(b.ts.URL)
	}
}

// meshRouteKey mirrors planRoute's derivation for a spec-less
// /v1/mesh POST.
func meshRouteKey(t *testing.T, body []byte) string {
	t.Helper()
	spec, err := serve.MeshSpecFromQuery(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	return serve.ImageKey(body) + "|" + spec.Variant()
}

func postMesh(t *testing.T, rts *httptest.Server, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/mesh", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRouterRoutesConsistently: the same image body always lands on
// the same backend, and the job ledger stays balanced.
func TestRouterRoutesConsistently(t *testing.T) {
	fleet := newStubFleet(t, 3)
	r := newTestRouter(t, Config{Backends: fleetURLs(fleet)})
	probeAll(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	body := []byte("fake-nrrd-payload-A")
	var node string
	for i := 0; i < 5; i++ {
		resp := postMesh(t, rts, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		got := resp.Header.Get(serve.NodeHeader)
		resp.Body.Close()
		if got == "" {
			t.Fatal("relayed response lost the node header")
		}
		if node == "" {
			node = got
		} else if got != node {
			t.Fatalf("request %d landed on %s, earlier ones on %s", i, got, node)
		}
	}
	var total int64
	for _, b := range fleet {
		total += b.hits.Load()
	}
	if total != 5 {
		t.Fatalf("fleet saw %d hits, want 5 on one backend", total)
	}
	st := r.Stats()
	if st.ProxiedJobs != 5 || st.CompletedJobs != 5 || st.FailedJobs != 0 {
		t.Fatalf("ledger: proxied=%d completed=%d failed=%d", st.ProxiedJobs, st.CompletedJobs, st.FailedJobs)
	}
	if owner := r.Owner(meshRouteKey(t, body)); owner == "" {
		t.Fatal("healthy ring has no owner for the key")
	}
}

// TestRouterFailoverToReplica: with the owner partitioned away, the
// buffered body is replayed against the next ring replica and the
// request still succeeds; the failures eject the owner.
func TestRouterFailoverToReplica(t *testing.T) {
	fleet := newStubFleet(t, 3)
	part := &partition{}
	r := newTestRouter(t, Config{
		Backends:      fleetURLs(fleet),
		Replicas:      3,
		FailThreshold: 2,
		Transport:     part,
	})
	probeAll(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	body := []byte("fake-nrrd-payload-B")
	owner := r.Owner(meshRouteKey(t, body))
	part.set(owner, true)

	for i := 0; i < 2; i++ {
		resp := postMesh(t, rts, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("failover request %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Two transport failures crossed FailThreshold: the owner must be
	// ejected without waiting for the prober.
	for _, h := range r.HealthyBackends() {
		if h == owner {
			t.Fatalf("owner %s still in ring after %d proxy failures", owner, 2)
		}
	}
	if got := r.mProxied.Value(owner, outcomeTransportErr); got != 2 {
		t.Fatalf("owner transport_error count = %d, want 2", got)
	}
	// Rejoin: heal the partition, one passing probe restores membership.
	part.set(owner, false)
	r.ProbeOnce(owner)
	found := false
	for _, h := range r.HealthyBackends() {
		found = found || h == owner
	}
	if !found {
		t.Fatalf("owner %s did not rejoin after a passing probe", owner)
	}
}

// TestRouterCrossNodeSingleFlight: while a key is in flight, a second
// request for it is steered to the same backend (joining its local
// coalescing flight) and the pin shows up in /v1/stats.
func TestRouterCrossNodeSingleFlight(t *testing.T) {
	fleet := newStubFleet(t, 2)
	gate := make(chan struct{})
	for _, b := range fleet {
		b.gate = gate
	}
	r := newTestRouter(t, Config{Backends: fleetURLs(fleet)})
	probeAll(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	body := []byte("fake-nrrd-payload-C")
	key := meshRouteKey(t, body)
	nodes := make(chan string, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postMesh(t, rts, body, nil)
			defer resp.Body.Close()
			nodes <- resp.Header.Get(serve.NodeHeader)
		}()
		// First request must be pinned before the second arrives.
		deadline := time.Now().Add(5 * time.Second)
		for len(r.InflightKeys()) < 1 {
			if time.Now().After(deadline) {
				t.Error("flight never registered")
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	keys := r.InflightKeys()
	if len(keys) != 1 || keys[0] != key {
		t.Errorf("inflight keys = %v, want [%s]", keys, key)
	}
	// Hold the gate until the second request has reached a backend —
	// which happens strictly after it joined the flight — so the join
	// is counted before the first request can complete and unpin.
	deadline := time.Now().Add(5 * time.Second)
	for fleet[0].hits.Load()+fleet[1].hits.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached a backend")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(nodes)
	var a, b string
	a = <-nodes
	b = <-nodes
	if a != b || a == "" {
		t.Fatalf("coalescable requests landed on %q and %q, want one backend", a, b)
	}
	if st := r.Stats(); st.FlightJoins != 1 {
		t.Fatalf("flight_joins = %d, want 1", st.FlightJoins)
	}
	if got := len(r.InflightKeys()); got != 0 {
		t.Fatalf("%d keys still pinned after completion", got)
	}
}

// TestRouterUnavailableEnvelope: with every backend unreachable the
// router's 503 carries the shared error envelope and a Retry-After
// inside the [1,30]s clamp, mirroring the backend's own policy.
func TestRouterUnavailableEnvelope(t *testing.T) {
	fleet := newStubFleet(t, 2)
	part := &partition{}
	for _, b := range fleet {
		part.set(b.ts.URL, true)
	}
	r := newTestRouter(t, Config{Backends: fleetURLs(fleet), Transport: part})
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	resp := postMesh(t, rts, []byte("fake-nrrd-payload-D"), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	sec, err := strconv.Atoi(ra)
	if err != nil || sec < 1 || sec > 30 {
		t.Fatalf("Retry-After %q outside the [1,30]s clamp", ra)
	}
	var env struct {
		Error struct {
			Code        string `json:"code"`
			Reason      string `json:"reason"`
			RetryAfterS int    `json:"retry_after_s"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if env.Error.Code != serve.CodeUnavailable || env.Error.Reason == "" {
		t.Fatalf("envelope = %+v, want code %q with a reason", env.Error, serve.CodeUnavailable)
	}
	if env.Error.RetryAfterS != sec {
		t.Fatalf("retry_after_s=%d disagrees with header %d", env.Error.RetryAfterS, sec)
	}
	if st := r.Stats(); st.ProxiedJobs != st.CompletedJobs+st.FailedJobs {
		t.Fatalf("ledger unbalanced: %+v", st)
	}
}

// TestRouterStreamingKeyHeader: a request carrying X-Pi2md-Image-Key
// routes on the header — identical headers land together even with
// different bodies (the backend, not the router, owns content
// verification).
func TestRouterStreamingKeyHeader(t *testing.T) {
	fleet := newStubFleet(t, 3)
	r := newTestRouter(t, Config{Backends: fleetURLs(fleet)})
	probeAll(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	hdr := map[string]string{ImageKeyHeader: strings.Repeat("deadbeef00112233", 4)}
	var node string
	for i := 0; i < 4; i++ {
		resp := postMesh(t, rts, []byte(fmt.Sprintf("different-body-%d", i)), hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("streamed request %d: status %d", i, resp.StatusCode)
		}
		got := resp.Header.Get(serve.NodeHeader)
		resp.Body.Close()
		if node == "" {
			node = got
		} else if got != node {
			t.Fatalf("streamed request %d landed on %s, earlier on %s", i, got, node)
		}
	}
}

// TestRouterReadyzLifecycle: not ready before any probe passes, ready
// after, not ready again once the fleet is ejected — and the ring
// rebalance counter moves only on transitions.
func TestRouterReadyzLifecycle(t *testing.T) {
	fleet := newStubFleet(t, 2)
	part := &partition{}
	r := newTestRouter(t, Config{Backends: fleetURLs(fleet), FailThreshold: 2, Transport: part})
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	get := func(path string) int {
		resp, err := http.Get(rts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-probe readyz = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 regardless of fleet state", code)
	}
	probeAll(r, fleet)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("post-probe readyz = %d, want 200", code)
	}
	after := r.Stats().Rebalances
	if after != 2 {
		t.Fatalf("rebalances = %d after two joins, want 2", after)
	}
	probeAll(r, fleet) // steady state: no transitions, no rebalances
	if got := r.Stats().Rebalances; got != after {
		t.Fatalf("steady-state probe caused a rebalance (%d → %d)", after, got)
	}
	for _, b := range fleet {
		part.set(b.ts.URL, true)
	}
	probeAll(r, fleet)
	probeAll(r, fleet) // second consecutive failure crosses FailThreshold=2
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("post-ejection readyz = %d, want 503", code)
	}
	if got := r.Stats().Rebalances; got != after+2 {
		t.Fatalf("rebalances = %d after two ejections, want %d", got, after+2)
	}
}
