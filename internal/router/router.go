package router

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// ImageKeyHeader lets a client that already knows its image's SHA-256
// (every repeat client does — it is the cache key) opt into the pure
// streaming path: the router routes on the header and pipes the body
// through without buffering it. Without the header the router must
// read the body to derive the key — content-addressed routing cannot
// pick a backend before it has hashed the content — so it buffers up
// to MaxRequestBytes, which also buys replica-fallback replay.
const ImageKeyHeader = "X-Pi2md-Image-Key"

// Proxy outcome labels of pi2mr_proxied_jobs_total.
const (
	outcomeOK           = "ok"              // relayed a 2xx/3xx
	outcomeUpstream4xx  = "upstream_4xx"    // relayed a backend 4xx verbatim
	outcomeUpstream5xx  = "upstream_5xx"    // relayed a backend 5xx verbatim
	outcomeTransportErr = "transport_error" // attempt never produced a response, or the backend died mid-body
	outcomeClientGone   = "client_gone"     // the client canceled or disconnected mid-attempt
)

// Config configures a Router. Zero values select the defaults noted
// on each field.
type Config struct {
	// Backends are the pi2md base URLs ("http://host:port"); at least
	// one is required. Trailing slashes are stripped.
	Backends []string
	// Replicas bounds the fallback ladder: how many distinct ring
	// members a buffered request may be tried against (owner first).
	// Default 2.
	Replicas int
	// VNodes is the virtual-node count per member. Default 128.
	VNodes int
	// ProbeInterval is the mean health-probe period per backend; the
	// actual period is jittered to [0.5,1.5)× so probes across backends
	// and routers never phase-lock. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe. Default 2s.
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe (or proxy transport)
	// failure count that ejects a backend from the ring. One successful
	// probe rejoins it. Default 3.
	FailThreshold int
	// MaxRequestBytes caps the buffered-body routing path, mirroring
	// the backend's own cap. Default 64 MiB.
	MaxRequestBytes int64
	// ETagCacheSize bounds the (routeKey → ETag) table behind the
	// router-side 304 short-circuit and the replica-cache read trigger.
	// Default 4096 entries, evicted LRU.
	ETagCacheSize int
	// RetryBudget is the fraction of successful relays earned back as
	// retry allowance, Finagle-style: every fallback forward, extra
	// cache probe, or hedge beyond a request's first attempt withdraws
	// one token from a shared bucket that successes refill at this
	// ratio. 0 selects the default 0.1 (one retry per ten successes);
	// negative disables budget gating entirely (unbounded retries, the
	// pre-budget behavior).
	RetryBudget float64
	// RetryBudgetSeed is the bucket's boot-time token balance — the
	// burst allowance a fresh router may spend before it has earned
	// anything. 0 selects the default 10; negative means an empty
	// bucket.
	RetryBudgetSeed float64
	// HedgeQuantile is the observed cache-probe latency quantile after
	// which a second replica probe is hedged on tail-latency reads. 0
	// selects the default 0.95; negative disables hedging.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay while the probe-latency
	// histogram is still sparse (default 25ms).
	HedgeMinDelay time.Duration
	// Transport performs backend HTTP round trips for both proxying
	// and probing — tests inject partitions here. Default
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Jitter returns uniform [0,1) samples for probe scheduling and
	// Retry-After spreading; nil selects math/rand. Tests pin it.
	Jitter func() float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Replicas <= 0 {
		out.Replicas = 2
	}
	if out.VNodes <= 0 {
		out.VNodes = 128
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = time.Second
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = 2 * time.Second
	}
	if out.FailThreshold <= 0 {
		out.FailThreshold = 3
	}
	if out.MaxRequestBytes <= 0 {
		out.MaxRequestBytes = 64 << 20
	}
	if out.ETagCacheSize <= 0 {
		out.ETagCacheSize = 4096
	}
	if out.RetryBudget == 0 {
		out.RetryBudget = 0.1
	}
	if out.RetryBudgetSeed == 0 {
		out.RetryBudgetSeed = 10
	} else if out.RetryBudgetSeed < 0 {
		out.RetryBudgetSeed = 0
	}
	if out.HedgeQuantile == 0 {
		out.HedgeQuantile = 0.95
	}
	if out.HedgeMinDelay <= 0 {
		out.HedgeMinDelay = 25 * time.Millisecond
	}
	if out.Transport == nil {
		out.Transport = http.DefaultTransport
	}
	if out.Jitter == nil {
		out.Jitter = rand.Float64
	}
	return out
}

// backendState is one configured backend's health ledger, guarded by
// Router.mu. A backend starts unhealthy — it earns ring membership
// with its first successful probe, so a router booting against a dead
// fleet never routes into the void (beyond the fail-open path).
type backendState struct {
	name      string // normalized base URL
	healthy   bool
	fails     int // consecutive failures (probe or proxy transport)
	probes    int64
	lastProbe time.Time
	lastErr   string
}

// flightPin is the cross-node single-flight record for one route key:
// while any request for the key is in flight, later arrivals are
// steered to the same backend so they join its local coalescing
// flight instead of re-running the job on whichever node the ring
// points at after a membership change.
type flightPin struct {
	backend string // last backend an attempt was sent to; "" until first send
	members int
}

// Router is the distributed meshing tier: consistent-hash routing of
// (image key, variant) onto healthy pi2md backends, with health-probed
// membership, cross-node single-flight pinning, a streaming proxy with
// replica fallback, and its own metrics registry.
type Router struct {
	cfg   Config
	start time.Time

	mu       sync.Mutex
	backends map[string]*backendState
	order    []string // sorted backend names
	ring     *Ring    // healthy members only; empty ⇒ fail open to allRing
	allRing  *Ring    // every configured member, fixed at construction

	flightMu sync.Mutex
	flights  map[string]*flightPin

	// etags remembers which backend last served each route key and with
	// what entity — the state behind local 304s and replica cache reads.
	etags *etagTable

	// budget bounds retry amplification across the fallback and
	// replica-cache ladders; nil when gating is disabled.
	budget *retryBudget

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool

	reg             *serve.Registry
	mBackendHealthy *serve.GaugeVec
	mProxied        *serve.CounterVec2
	mRebalances     *serve.Counter
	mRingMembers    *serve.Gauge
	mJobs           *serve.Counter
	mCompleted      *serve.Counter
	mFailed         *serve.Counter
	mFlightJoins    *serve.Counter
	mProbeFailures  *serve.Counter
	mProxySeconds   *serve.Histogram
	mReplicaHits    *serve.Counter
	mReplicaMisses  *serve.Counter
	mETag304        *serve.Counter
	mDrains         *serve.Counter
	mRetries        *serve.Counter
	mRetryExhausted *serve.Counter
	mHedged         *serve.CounterVec // pi2mr_hedged_probes_total{outcome}
	mProbeSeconds   *serve.Histogram  // pi2mr_cache_probe_seconds
}

// New builds a Router over the configured backends. Call Start to
// begin health probing; until a backend passes a probe the router
// fails open, spreading attempts across all configured members.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: at least one backend is required")
	}
	r := &Router{
		cfg:      cfg,
		start:    time.Now(),
		backends: make(map[string]*backendState, len(cfg.Backends)),
		flights:  make(map[string]*flightPin),
		etags:    newETagTable(cfg.ETagCacheSize),
		stop:     make(chan struct{}),
	}
	if cfg.RetryBudget > 0 {
		r.budget = newRetryBudget(cfg.RetryBudget, cfg.RetryBudgetSeed)
	}
	for _, b := range cfg.Backends {
		name := strings.TrimRight(strings.TrimSpace(b), "/")
		if name == "" {
			return nil, fmt.Errorf("router: empty backend URL")
		}
		if !strings.Contains(name, "://") {
			name = "http://" + name
		}
		if _, dup := r.backends[name]; dup {
			return nil, fmt.Errorf("router: duplicate backend %q", name)
		}
		r.backends[name] = &backendState{name: name}
		r.order = append(r.order, name)
	}
	sort.Strings(r.order)
	r.allRing = NewRing(r.order, cfg.VNodes)
	r.ring = NewRing(nil, cfg.VNodes)

	reg := serve.NewRegistry()
	r.reg = reg
	r.mBackendHealthy = reg.GaugeVec("pi2mr_backend_healthy",
		"Whether the backend is in the routing ring (1) or ejected (0).", "backend")
	r.mProxied = reg.CounterVec2("pi2mr_proxied_jobs_total",
		"Proxy attempts by backend and outcome.", "backend", "outcome")
	r.mRebalances = reg.Counter("pi2mr_ring_rebalances_total",
		"Ring rebuilds caused by membership changes (ejections and rejoins).")
	r.mRingMembers = reg.Gauge("pi2mr_ring_members",
		"Healthy members currently in the routing ring.")
	r.mJobs = reg.Counter("pi2mr_jobs_total",
		"Proxy jobs accepted for routing. Always equals completed + failed once idle.")
	r.mCompleted = reg.Counter("pi2mr_completed_jobs_total",
		"Jobs answered with a relayed backend response (any status).")
	r.mFailed = reg.Counter("pi2mr_failed_jobs_total",
		"Jobs answered with a router-originated error envelope.")
	r.mFlightJoins = reg.Counter("pi2mr_flight_joins_total",
		"Requests that joined an already in-flight key's pinned backend.")
	r.mProbeFailures = reg.Counter("pi2mr_probe_failures_total",
		"Health probes that failed (timeout, non-200, or injected drop).")
	r.mProxySeconds = reg.Histogram("pi2mr_proxy_seconds",
		"End-to-end proxy latency, first byte in to last byte relayed.",
		[]float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 30, 120})
	r.mReplicaHits = reg.Counter("pi2mr_replica_cache_hits_total",
		"Jobs answered by a replica's cache-only read after the key's last-known server became unreachable.")
	r.mReplicaMisses = reg.Counter("pi2mr_replica_cache_misses_total",
		"Cache-only replica probes answered 404 cache_miss (the ladder moved on).")
	r.mETag304 = reg.Counter("pi2mr_etag_304_total",
		"Conditional requests answered 304 from the router's ETag table without a backend round trip.")
	r.mDrains = reg.Counter("pi2mr_planned_drains_total",
		"Planned backend drains executed through POST /v1/drain.")
	r.mRetries = reg.Counter("pi2mr_retries_total",
		"Backend round trips beyond a request's first attempt (fallback forwards, extra cache probes, hedges), each paid for by a retry-budget token.")
	r.mRetryExhausted = reg.Counter("pi2mr_retry_budget_exhausted_total",
		"Requests whose fallback ladder was stopped by an empty retry budget.")
	r.mHedged = reg.CounterVec("pi2mr_hedged_probes_total",
		"Hedged cache-only probes by outcome: won (hedge answered first), lost (primary answered first), starved (budget declined the hedge).", "outcome")
	r.mProbeSeconds = reg.Histogram("pi2mr_cache_probe_seconds",
		"Latency of replica cache-only probes; its upper quantile sets the hedge delay.",
		[]float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10})
	reg.GaugeFunc("pi2mr_retry_budget_tokens",
		"Tokens currently in the retry budget (0 with gating disabled).",
		func() float64 {
			if r.budget == nil {
				return 0
			}
			return r.budget.balance()
		})
	for _, name := range r.order {
		r.mBackendHealthy.With(name).Set(0)
	}
	return r, nil
}

// Start launches one health-probe loop per backend.
func (r *Router) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return
	}
	r.started = true
	for _, name := range r.order {
		r.wg.Add(1)
		go r.probeLoop(name)
	}
}

// Stop halts probing and waits for the probe loops to exit. In-flight
// proxied requests are unaffected (the surrounding http.Server owns
// their lifecycle).
func (r *Router) Stop() {
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return
	}
	r.started = false
	r.mu.Unlock()
	close(r.stop)
	r.wg.Wait()
}

// probeLoop probes one backend forever at a jittered period: an
// immediate first probe (so a healthy fleet is routable right after
// Start), then [0.5,1.5)× ProbeInterval between probes so probes from
// many routers against one backend decorrelate.
func (r *Router) probeLoop(name string) {
	defer r.wg.Done()
	for {
		r.ProbeOnce(name)
		d := time.Duration((0.5 + r.cfg.Jitter()) * float64(r.cfg.ProbeInterval))
		select {
		case <-r.stop:
			return
		case <-time.After(d):
		}
	}
}

// ProbeOnce runs a single health probe of the named backend and
// applies the result to ring membership. Exported so tests can drive
// membership deterministically without waiting out probe intervals.
func (r *Router) ProbeOnce(name string) {
	ok, errStr := r.checkBackend(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.backends[name]
	if b == nil {
		return
	}
	b.probes++
	b.lastProbe = time.Now()
	b.lastErr = errStr
	if ok {
		b.fails = 0
		if !b.healthy {
			b.healthy = true
			r.rebuildRingLocked()
		}
		return
	}
	r.mProbeFailures.Inc()
	r.failLocked(b)
}

// checkBackend performs the /readyz round trip. The injected
// ProbeFail point models a dropped probe (network loss), not a sick
// backend — it fails without contacting the node.
func (r *Router) checkBackend(name string) (bool, string) {
	if faultinject.Fire(faultinject.ProbeFail) {
		return false, "injected probe drop"
	}
	req, err := http.NewRequest(http.MethodGet, name+"/readyz", nil)
	if err != nil {
		return false, err.Error()
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	resp, err := r.cfg.Transport.RoundTrip(req.WithContext(ctx))
	if err != nil {
		return false, err.Error()
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("readyz status %d", resp.StatusCode)
	}
	return true, ""
}

// failLocked records one failure against b and ejects it from the
// ring once the consecutive count crosses the threshold. Shared by
// the prober and the proxy path, so a backend that dies under traffic
// is ejected by the very requests that discover it, not only by the
// next few probes.
func (r *Router) failLocked(b *backendState) {
	b.fails++
	if b.healthy && b.fails >= r.cfg.FailThreshold {
		b.healthy = false
		r.rebuildRingLocked()
	}
}

// rebuildRingLocked swaps in a new ring over the currently healthy
// set. Callers ensure membership actually changed (transitions only),
// so every call is a real rebalance.
func (r *Router) rebuildRingLocked() {
	healthy := make([]string, 0, len(r.order))
	for _, name := range r.order {
		b := r.backends[name]
		if b.healthy {
			healthy = append(healthy, name)
		}
		v := int64(0)
		if b.healthy {
			v = 1
		}
		r.mBackendHealthy.With(name).Set(v)
	}
	r.ring = NewRing(healthy, r.cfg.VNodes)
	r.mRingMembers.Set(int64(len(healthy)))
	r.mRebalances.Inc()
}

// HealthyBackends returns the sorted healthy member list.
func (r *Router) HealthyBackends() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Members()
}

// candidates returns the fallback ladder for key: the ring replicas
// over the healthy set, or — fail open — over every configured
// backend when nothing is healthy (a booting router, or a fleet-wide
// probe outage that the backends themselves may have survived).
func (r *Router) candidates(key string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ring.Size() == 0 {
		return r.allRing.Replicas(key, r.allRing.Size())
	}
	return r.ring.Replicas(key, r.cfg.Replicas)
}

// Owner reports the healthy-ring owner of a route key ("" when the
// ring is empty) — test and stats surface, not the proxy path.
func (r *Router) Owner(key string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Owner(key)
}

// joinFlight registers interest in key and returns the currently
// pinned backend ("" for a fresh flight) plus whether an existing
// flight was joined.
func (r *Router) joinFlight(key string) (string, bool) {
	r.flightMu.Lock()
	defer r.flightMu.Unlock()
	f := r.flights[key]
	if f == nil {
		f = &flightPin{}
		r.flights[key] = f
		f.members++
		return "", false
	}
	f.members++
	return f.backend, true
}

// setPin records the backend the key's current attempt is against.
func (r *Router) setPin(key, backend string) {
	r.flightMu.Lock()
	defer r.flightMu.Unlock()
	if f := r.flights[key]; f != nil {
		f.backend = backend
	}
}

// leaveFlight drops one member from key's flight, deleting the pin
// with the last member.
func (r *Router) leaveFlight(key string) {
	r.flightMu.Lock()
	defer r.flightMu.Unlock()
	f := r.flights[key]
	if f == nil {
		return
	}
	f.members--
	if f.members <= 0 {
		delete(r.flights, key)
	}
}

// isHealthy reports whether name is a configured backend currently in
// the healthy ring. The replica-cache trigger keys off it: a route key
// whose last-known server is no longer healthy is worth probing the
// ladder cache-only before paying a re-mesh on the new owner.
func (r *Router) isHealthy(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.backends[name]
	return b != nil && b.healthy
}

// ejectBackend removes name from the healthy ring immediately — the
// planned-drain path, where waiting FailThreshold probe periods for the
// now-draining backend's readyz 503s to accumulate would route new
// work into a node that already said goodbye. The backend's probe loop
// keeps running; if it ever answers ready again (drain aborted, process
// restarted) one successful probe rejoins it as usual.
func (r *Router) ejectBackend(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.backends[name]
	if b == nil {
		return false
	}
	b.fails = r.cfg.FailThreshold
	b.lastErr = "planned drain"
	if b.healthy {
		b.healthy = false
		r.rebuildRingLocked()
	}
	return true
}

// InflightKeys returns the sorted route keys currently pinned.
func (r *Router) InflightKeys() []string {
	r.flightMu.Lock()
	keys := make([]string, 0, len(r.flights))
	for k := range r.flights {
		keys = append(keys, k)
	}
	r.flightMu.Unlock()
	sort.Strings(keys)
	return keys
}
