package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/img"
	"repro/internal/serve"
)

// chaosSeed mirrors the serve-package convention: PI2MD_CHAOS_SEED
// drives the CI matrix, a fixed default keeps local runs reproducible.
func chaosSeed(t *testing.T) int64 {
	if v := os.Getenv("PI2MD_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad PI2MD_CHAOS_SEED=%q: %v", v, err)
		}
		return n
	}
	return 11
}

// chaosBackend is one real pi2md node under the router: a live
// serve.Server with its full self-healing stack, plus the partition
// flag standing in for kill -9 from the router's point of view.
type chaosBackend struct {
	srv *serve.Server
	ts  *httptest.Server
}

// lockedJitter makes a seeded rand usable from the router's
// concurrent probe loops.
type lockedJitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (l *lockedJitter) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

type chaosOutcome struct {
	key        int // body index
	code       int
	node       string
	retryAfter string
	cacheOnly  string // X-Pi2md-Cache-Only marker, "hit" on replica reads
	envelopeOK bool
	reason     string
}

// TestRouterChaosSoak is the distributed tier's chaos harness: a
// router over three REAL pi2md backends under seeded mixed-key
// traffic, with injected proxy-dial failures and dropped probes, a
// node kill mid-traffic, and a restart wave. Invariants:
//
//   - zero hung requests: every issued request produces an outcome;
//   - every 4xx/5xx carries the JSON error envelope, every router or
//     backend 503/429 a Retry-After within the [1,30]s clamp;
//   - the killed node is ejected and its keys are served by the
//     surviving replicas (no success ever names the dead node while
//     it is down);
//   - at least one of the killed node's previously-served keys is
//     answered from a survivor's result cache via the cache-only
//     replica read (replica_cache_hits > 0), not re-meshed;
//   - after the restart the node rejoins and its keys re-home to it;
//   - the router ledger balances: proxied == completed + failed, and
//     no flight pin outlives its requests.
func TestRouterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is long")
	}
	seed := chaosSeed(t)

	// Three real backends, one warm session each — small pools so the
	// soak exercises queueing and coalescing, not just happy paths.
	fleet := make([]*chaosBackend, 3)
	nodeOf := map[string]string{} // backend URL → node id
	urlOfNode := map[string]string{}
	for i := range fleet {
		store, _, err := cachestore.Open(cachestore.Config{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewServer(serve.Config{
			PoolSize:       1,
			QueueDepth:     8,
			DefaultTimeout: 10 * time.Second,
			CoalesceMax:    4,
			Cache:          store,
			Session:        core.Config{Workers: 1, LivelockTimeout: time.Minute},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b := &chaosBackend{srv: srv, ts: ts}
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Drain(ctx)
			store.Close()
		})
		fleet[i] = b
		nodeOf[ts.URL] = srv.NodeID()
		urlOfNode[srv.NodeID()] = ts.URL
	}

	part := &partition{}
	urls := make([]string, len(fleet))
	for i, b := range fleet {
		urls[i] = b.ts.URL
	}
	rt, err := New(Config{
		Backends:      urls,
		Replicas:      2,
		ProbeInterval: 30 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		FailThreshold: 2,
		Transport:     part,
		Jitter:        (&lockedJitter{rng: rand.New(rand.NewSource(seed + 1))}).Float64,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	// Injected network chaos rides on top of the kill wave: sporadic
	// proxy dial failures (forcing replica fallback on healthy rings)
	// and dropped probes (forcing spurious ejections and rejoins).
	storm := faultinject.New(faultinject.Config{
		Seed: seed,
		Rates: map[faultinject.Point]float64{
			faultinject.ProxyDialFail: 0.02,
			faultinject.ProbeFail:     0.05,
		},
	})
	restore := faultinject.Enable(storm)
	defer restore()

	waitHealthy := func(n int, deadline time.Duration) {
		t.Helper()
		end := time.Now().Add(deadline)
		for len(rt.HealthyBackends()) != n {
			if time.Now().After(end) {
				t.Fatalf("fleet never reached %d healthy backends (have %v)",
					n, rt.HealthyBackends())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitHealthy(3, 10*time.Second)

	// Three distinct small images — three route keys spread over the
	// ring — plus their derived keys for ownership assertions.
	bodies := make([][]byte, 3)
	keys := make([]string, 3)
	for i := range bodies {
		var buf bytes.Buffer
		if err := img.WriteNRRD(&buf, img.SpherePhantom(6+i)); err != nil {
			t.Fatal(err)
		}
		bodies[i] = buf.Bytes()
		spec, err := serve.MeshSpecFromQuery(nil)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = serve.ImageKey(bodies[i]) + "|" + spec.Variant()
	}

	client := &http.Client{Timeout: 30 * time.Second}
	doMesh := func(ki int) chaosOutcome {
		resp, err := client.Post(rts.URL+"/v1/mesh", "application/octet-stream",
			bytes.NewReader(bodies[ki]))
		if err != nil {
			return chaosOutcome{key: ki, code: -1, reason: err.Error()}
		}
		defer resp.Body.Close()
		out := chaosOutcome{
			key:        ki,
			code:       resp.StatusCode,
			node:       resp.Header.Get(serve.NodeHeader),
			retryAfter: resp.Header.Get("Retry-After"),
			cacheOnly:  resp.Header.Get(serve.CacheOnlyHeader),
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode >= 400 {
			var env struct {
				Error struct {
					Code   string `json:"code"`
					Reason string `json:"reason"`
				} `json:"error"`
			}
			if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" && env.Error.Reason != "" {
				out.envelopeOK = true
				out.reason = env.Error.Code
			}
		}
		return out
	}

	// Seed every backend's result cache with key 0's mesh directly —
	// standing in for the shared-storage replication a real deployment
	// runs — so after the kill any survivor can answer the victim's
	// warmest key cache-only instead of re-meshing it.
	var seedETag string
	for _, b := range fleet {
		resp, err := client.Post(b.ts.URL+"/v1/mesh", "application/octet-stream",
			bytes.NewReader(bodies[0]))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seeding %s with key 0: status %d", b.srv.NodeID(), resp.StatusCode)
		}
		if raw := rawETagFromHeader(resp.Header.Get("ETag")); raw != "" {
			seedETag = raw
		}
	}
	if seedETag == "" {
		t.Fatal("seeding produced no parseable entity tag")
	}

	// Background traffic: four workers hammering random keys through
	// every phase, so the kill and restart land mid-traffic.
	var (
		outcomesMu sync.Mutex
		outcomes   []chaosOutcome
		issued     int64
	)
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wrng := rand.New(rand.NewSource(seed + 100 + int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				out := doMesh(wrng.Intn(len(bodies)))
				outcomesMu.Lock()
				issued++
				outcomes = append(outcomes, out)
				outcomesMu.Unlock()
			}
		}()
	}

	// Phase 1: healthy-fleet soak.
	time.Sleep(700 * time.Millisecond)

	// Phase 2: kill the owner of key 0 mid-traffic (partitioned away —
	// kill -9 as seen from the router) and wait for ejection.
	victim := rt.Owner(keys[0])
	if victim == "" {
		t.Fatal("no owner for key 0 on a healthy ring")
	}
	victimNode := nodeOf[victim]
	part.set(victim, true)
	end := time.Now().Add(10 * time.Second)
	for {
		alive := false
		for _, h := range rt.HealthyBackends() {
			alive = alive || h == victim
		}
		if !alive {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("victim %s never ejected", victim)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The killed node's keys must be served by survivors: drive key 0
	// directly and require at least one success from a non-victim node.
	survivorServed := false
	for i := 0; i < 10 && !survivorServed; i++ {
		out := doMesh(0)
		if out.code == http.StatusOK {
			if out.node == victimNode {
				t.Fatalf("dead node %s served key 0", victimNode)
			}
			survivorServed = true
		}
	}
	if !survivorServed {
		t.Fatal("no survivor ever served the killed node's key")
	}

	// The replica cache-only read must fire for key 0: its recorded
	// server is dead and every survivor holds the seeded result. Keep
	// driving the key until the metric moves. If a fallback re-mesh
	// re-pointed the ETag entry at a healthy survivor before a ladder
	// walk landed (an injected dial failure can burn one), re-arm the
	// trigger by pointing the entry back at the dead victim — exactly
	// the state a router restarted mid-outage would hold.
	end = time.Now().Add(15 * time.Second)
	for rt.Stats().ReplicaCacheHits == 0 {
		if time.Now().After(end) {
			t.Fatal("owner kill never produced a replica cache-only read for key 0")
		}
		if ent, ok := rt.etags.lookup(keys[0]); !ok || rt.isHealthy(ent.backend) {
			rt.etags.learn(keys[0], seedETag, victim)
		}
		if out := doMesh(0); out.code == http.StatusOK && out.node == victimNode {
			t.Fatalf("dead node %s served key 0", victimNode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: restart wave — heal the partition, wait for rejoin,
	// then require key 0 to re-home to its original owner.
	part.set(victim, false)
	end = time.Now().Add(10 * time.Second)
	for {
		back := false
		for _, h := range rt.HealthyBackends() {
			back = back || h == victim
		}
		if back {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("victim %s never rejoined", victim)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rehomed := false
	end = time.Now().Add(15 * time.Second)
	for !rehomed {
		if time.Now().After(end) {
			t.Fatalf("key 0 never re-homed to %s after rejoin", victimNode)
		}
		if out := doMesh(0); out.code == http.StatusOK && out.node == victimNode {
			rehomed = true
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 4: stop traffic; every worker must return (zero hangs is
	// enforced by the client timeout plus this bounded wait).
	close(stopTraffic)
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(60 * time.Second):
		t.Fatal("traffic workers hung")
	}

	outcomesMu.Lock()
	defer outcomesMu.Unlock()
	if int64(len(outcomes)) != issued {
		t.Fatalf("%d outcomes for %d issued requests", len(outcomes), issued)
	}
	var ok200, errs, cacheOnlyServed int
	for _, out := range outcomes {
		if out.cacheOnly == "hit" {
			cacheOnlyServed++
		}
		switch {
		case out.code == -1:
			t.Errorf("request for key %d died at the client: %s", out.key, out.reason)
		case out.code >= 400:
			errs++
			if !out.envelopeOK {
				t.Errorf("status %d without a valid error envelope", out.code)
			}
			if out.code == http.StatusServiceUnavailable || out.code == http.StatusTooManyRequests {
				sec, err := strconv.Atoi(out.retryAfter)
				if err != nil || sec < 1 || sec > 30 {
					t.Errorf("status %d Retry-After %q outside [1,30]s", out.code, out.retryAfter)
				}
			}
		case out.code == http.StatusOK:
			ok200++
			if out.node == "" {
				t.Error("200 response without a node header")
			}
		default:
			t.Errorf("unexpected status %d", out.code)
		}
	}
	if ok200 == 0 {
		t.Fatal("the soak never completed a single mesh")
	}

	st := rt.Stats()
	if st.ProxiedJobs != st.CompletedJobs+st.FailedJobs {
		t.Fatalf("ledger unbalanced: proxied=%d completed=%d failed=%d",
			st.ProxiedJobs, st.CompletedJobs, st.FailedJobs)
	}
	if n := len(rt.InflightKeys()); n != 0 {
		t.Fatalf("%d flight pins outlived their requests", n)
	}
	if st.Rebalances < 4 {
		// 3 joins at boot + at least the kill/rejoin pair (injected
		// probe drops typically add more).
		t.Fatalf("rebalances = %d, want the kill/restart wave visible (>=4)", st.Rebalances)
	}
	if st.ReplicaCacheHits < 1 {
		t.Fatalf("replica_cache_hits = %d after an owner kill over warm replicas, want >=1", st.ReplicaCacheHits)
	}

	// Retry-budget ledger: every retry withdrew a token, and tokens only
	// enter the bucket at boot (seed) or as a fraction of ok relays —
	// so the retry count can never exceed seed + ratio x ok_relays.
	okRelays := rt.mProxied.TotalLabel2(outcomeOK)
	if maxRetries := rt.cfg.RetryBudgetSeed + rt.cfg.RetryBudget*float64(okRelays); float64(st.Retries) > maxRetries+1e-9 {
		t.Fatalf("retries = %d exceed the budget ledger bound %.1f (seed %.0f + %.2f x %d ok relays)",
			st.Retries, maxRetries, rt.cfg.RetryBudgetSeed, rt.cfg.RetryBudget, okRelays)
	}

	if path := os.Getenv("PI2MR_CHAOS_REPORT"); path != "" {
		report := map[string]any{
			"seed":        seed,
			"requests":    issued,
			"http_200":    ok200,
			"http_errors": errs,
			"rebalances":  st.Rebalances,
			"proxied":     st.ProxiedJobs,
			"completed":   st.CompletedJobs,
			"failed":      st.FailedJobs,
			"victim":      victimNode,

			"replica_cache_hits":   st.ReplicaCacheHits,
			"replica_cache_misses": st.ReplicaCacheMisses,
			"etag_304s":            st.ETag304s,
			"cache_only_served":    cacheOnlyServed,
			"retries":              st.Retries,
			"retry_exhausted":      st.RetryExhausted,
			"hedged_won":           st.HedgedWon,
			"hedged_lost":          st.HedgedLost,
		}
		raw, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Errorf("writing chaos report: %v", err)
		}
	}
}
