package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// cacheStub is a pi2md stand-in with a switchable replica cache: the
// full mesh path and the cache-only probe path answer distinguishable
// bodies, so tests can tell which one served.
type cacheStub struct {
	ts         *httptest.Server
	id         string
	meshHits   atomic.Int64
	probeHits  atomic.Int64
	cached     atomic.Bool
	rawETag    string // 16-hex raw etag both paths advertise
	drainKeys  []map[string]string
	drainCalls atomic.Int64
}

func newCacheFleet(t *testing.T, n int, rawETag string) []*cacheStub {
	t.Helper()
	fleet := make([]*cacheStub, n)
	for i := range fleet {
		b := &cacheStub{id: fmt.Sprintf("cstub-%d", i), rawETag: rawETag}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "ready\n")
		})
		mux.HandleFunc("POST /v1/mesh", func(w http.ResponseWriter, r *http.Request) {
			b.meshHits.Add(1)
			io.Copy(io.Discard, r.Body)
			w.Header().Set(serve.NodeHeader, b.id)
			w.Header().Set("ETag", serve.EntityTag(b.rawETag, "vtk"))
			io.WriteString(w, "full-"+b.id)
		})
		mux.HandleFunc("GET /v1/cache/", func(w http.ResponseWriter, r *http.Request) {
			b.probeHits.Add(1)
			if !b.cached.Load() {
				serve.WriteError(w, http.StatusNotFound, serve.CodeCacheMiss, "no cached result")
				return
			}
			entity := serve.EntityTag(b.rawETag, "vtk")
			w.Header().Set(serve.NodeHeader, b.id)
			w.Header().Set("ETag", entity)
			w.Header().Set(serve.CacheOnlyHeader, "hit")
			if serve.ETagMatch(r.Header.Get("If-None-Match"), entity) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			io.WriteString(w, "cached-"+b.id)
		})
		mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
			b.drainCalls.Add(1)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"node_id": b.id, "draining": true, "keys": b.drainKeys,
			})
		})
		b.ts = httptest.NewServer(mux)
		t.Cleanup(b.ts.Close)
		fleet[i] = b
	}
	return fleet
}

func cacheFleetURLs(fleet []*cacheStub) []string {
	urls := make([]string, len(fleet))
	for i, b := range fleet {
		urls[i] = b.ts.URL
	}
	return urls
}

func probeAllCache(r *Router, fleet []*cacheStub) {
	for _, b := range fleet {
		r.ProbeOnce(b.ts.URL)
	}
}

// decodeEnvelope reads the error envelope out of a response body.
func decodeEnvelope(t *testing.T, body io.Reader) (code, reason string, retryAfterS int) {
	t.Helper()
	var env struct {
		Error struct {
			Code        string `json:"code"`
			Reason      string `json:"reason"`
			RetryAfterS int    `json:"retry_after_s"`
		} `json:"error"`
	}
	if err := json.NewDecoder(body).Decode(&env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	return env.Error.Code, env.Error.Reason, env.Error.RetryAfterS
}

// TestRelayMidBodyBackendDeath: a backend that sends headers and then
// dies mid-body must be accounted a transport failure — failed job,
// transport_error outcome, a strike in the health ledger — not a
// completed relay. Before the fix, the io.Copy error was dropped and
// the truncated response counted ok + completed.
func TestRelayMidBodyBackendDeath(t *testing.T) {
	var died atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("POST /v1/mesh", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Length", "1048576")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "only-a-few-bytes")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		died.Add(1)
		panic(http.ErrAbortHandler) // kill the connection mid-body
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r := newTestRouter(t, Config{Backends: []string{ts.URL}, FailThreshold: 3})
	r.ProbeOnce(ts.URL)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	resp := postMesh(t, rts, []byte("fake-nrrd-payload-truncated"), nil)
	io.Copy(io.Discard, resp.Body) // the truncation surfaces client-side; ignore
	resp.Body.Close()
	if died.Load() != 1 {
		t.Fatalf("backend handler ran %d times, want 1", died.Load())
	}

	st := r.Stats()
	if st.ProxiedJobs != 1 || st.CompletedJobs != 0 || st.FailedJobs != 1 {
		t.Fatalf("ledger after truncated relay: proxied=%d completed=%d failed=%d, want 1/0/1",
			st.ProxiedJobs, st.CompletedJobs, st.FailedJobs)
	}
	if got := r.mProxied.Value(ts.URL, outcomeTransportErr); got != 1 {
		t.Fatalf("transport_error outcome = %d, want 1", got)
	}
	if got := r.mProxied.Value(ts.URL, outcomeOK); got != 0 {
		t.Fatalf("truncated relay counted ok (%d)", got)
	}
	if fails := st.Backends[0].ConsecutiveFails; fails < 1 {
		t.Fatalf("mid-body death left ConsecutiveFails=%d, want >=1 (health ledger not fed)", fails)
	}
	// The died-mid-body response must not have populated the ETag table.
	if st.ETagEntries != 0 {
		t.Fatalf("truncated relay learned an etag entry (%d)", st.ETagEntries)
	}
}

// TestProxyClientCancel499: a client canceling mid-proxy is answered
// with the backend tier's 499 canceled envelope — no Retry-After, the
// job counted failed, and no health-ledger strike against the backend.
// Before the fix this path fell into answer503, blaming capacity.
func TestProxyClientCancel499(t *testing.T) {
	fleet := newStubFleet(t, 1)
	gate := make(chan struct{})
	fleet[0].gate = gate
	defer close(gate)

	r := newTestRouter(t, Config{Backends: fleetURLs(fleet), FailThreshold: 3})
	probeAll(r, fleet)
	h := r.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/mesh",
		bytes.NewReader([]byte("fake-nrrd-payload-cancel"))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, req)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for fleet[0].hits.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client cancel")
	}

	if rec.Code != serve.StatusClientClosedRequest {
		t.Fatalf("status %d, want %d", rec.Code, serve.StatusClientClosedRequest)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		t.Fatalf("canceled response carries Retry-After %q; a hung-up client must not be told to retry", ra)
	}
	code, reason, retryAfterS := decodeEnvelope(t, rec.Body)
	if code != serve.CodeCanceled || reason == "" {
		t.Fatalf("envelope code=%q reason=%q, want %q with a reason", code, reason, serve.CodeCanceled)
	}
	if retryAfterS != 0 {
		t.Fatalf("envelope retry_after_s=%d, want 0", retryAfterS)
	}
	st := r.Stats()
	if st.ProxiedJobs != 1 || st.CompletedJobs != 0 || st.FailedJobs != 1 {
		t.Fatalf("ledger after cancel: proxied=%d completed=%d failed=%d, want 1/0/1",
			st.ProxiedJobs, st.CompletedJobs, st.FailedJobs)
	}
	if got := r.mProxied.Value(fleet[0].ts.URL, outcomeClientGone); got != 1 {
		t.Fatalf("client_gone outcome = %d, want 1", got)
	}
	// The backend did nothing wrong: no strike, still in the ring.
	if fails := st.Backends[0].ConsecutiveFails; fails != 0 {
		t.Fatalf("client cancel blamed the backend (ConsecutiveFails=%d)", fails)
	}
	if got := len(r.InflightKeys()); got != 0 {
		t.Fatalf("%d keys still pinned after cancel", got)
	}
}

// TestPlanRouteRejectsBadImageKey: the streaming path must validate
// X-Pi2md-Image-Key as a full lowercase-hex SHA-256 before using it as
// a route key. Before the fix, arbitrary client bytes became route
// keys verbatim.
func TestPlanRouteRejectsBadImageKey(t *testing.T) {
	fleet := newStubFleet(t, 2)
	r := newTestRouter(t, Config{Backends: fleetURLs(fleet)})
	probeAll(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	bad := []struct{ name, key string }{
		{"too short", "deadbeef"},
		{"too long", strings.Repeat("a", 65)},
		{"uppercase hex", strings.Repeat("DEADBEEF00112233", 4)},
		{"non-hex at right length", strings.Repeat("deadbeef0011223", 4) + "zzzz"},
		{"path traversal", "../../../../../../etc/passwd/aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"},
		{"spaces", strings.Repeat("deadbeef0011223 ", 4)},
	}
	for _, tc := range bad {
		resp := postMesh(t, rts, []byte("body"), map[string]string{ImageKeyHeader: tc.key})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		code, reason, _ := decodeEnvelope(t, resp.Body)
		resp.Body.Close()
		if code != serve.CodeBadRequest || reason == "" {
			t.Fatalf("%s: envelope code=%q reason=%q, want %q", tc.name, code, reason, serve.CodeBadRequest)
		}
	}
	// None of the garbage reached a backend or leaked a flight pin.
	if got := fleet[0].hits.Load() + fleet[1].hits.Load(); got != 0 {
		t.Fatalf("rejected keys reached backends %d times", got)
	}
	if got := len(r.InflightKeys()); got != 0 {
		t.Fatalf("%d flight pins leaked from rejected keys", got)
	}
	st := r.Stats()
	if int(st.FailedJobs) != len(bad) || st.ProxiedJobs != st.CompletedJobs+st.FailedJobs {
		t.Fatalf("ledger after rejections: %+v", st)
	}

	// A well-formed key still routes.
	resp := postMesh(t, rts, []byte("body"),
		map[string]string{ImageKeyHeader: strings.Repeat("0123456789abcdef", 4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid key: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestCopyHeadersConnectionNamed: RFC 7230 §6.1 — headers named in the
// Connection header value are hop-by-hop for this connection and must
// be stripped alongside the static set.
func TestCopyHeadersConnectionNamed(t *testing.T) {
	cases := []struct {
		name     string
		src      http.Header
		want     map[string]string
		stripped []string
	}{
		{
			name: "connection names a custom header",
			src: http.Header{
				"Connection": {"X-Custom, Keep-Alive"},
				"X-Custom":   {"secret"},
				"X-Other":    {"kept"},
				"Etag":       {`"0123456789abcdef-vtk"`},
			},
			want:     map[string]string{"X-Other": "kept", "Etag": `"0123456789abcdef-vtk"`},
			stripped: []string{"Connection", "X-Custom", "Keep-Alive"},
		},
		{
			name: "static hop-by-hop always stripped",
			src: http.Header{
				"Te":                {"trailers"},
				"Transfer-Encoding": {"chunked"},
				"Upgrade":           {"h2c"},
				"X-Pi2md-Node":      {"node-1"},
			},
			want:     map[string]string{"X-Pi2md-Node": "node-1"},
			stripped: []string{"Te", "Transfer-Encoding", "Upgrade"},
		},
		{
			name: "multiple connection values, odd casing and spacing",
			src: http.Header{
				"Connection": {" x-one ,", "X-TWO"},
				"X-One":      {"a"},
				"X-Two":      {"b"},
				"X-Three":    {"c"},
			},
			want:     map[string]string{"X-Three": "c"},
			stripped: []string{"X-One", "X-Two", "Connection"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := http.Header{}
			copyHeaders(dst, tc.src)
			for k, v := range tc.want {
				if got := dst.Get(k); got != v {
					t.Errorf("%s = %q, want %q", k, got, v)
				}
			}
			for _, k := range tc.stripped {
				if got := dst.Get(k); got != "" {
					t.Errorf("%s = %q leaked through, want stripped", k, got)
				}
			}
		})
	}
}

// TestETagTableLRU: the table is bounded, evicts least-recently-used,
// and lookup refreshes recency.
func TestETagTableLRU(t *testing.T) {
	tb := newETagTable(2)
	tb.learn("k1", "1111111111111111", "b1")
	tb.learn("k2", "2222222222222222", "b2")
	tb.lookup("k1") // refresh k1: k2 is now LRU
	tb.learn("k3", "3333333333333333", "b3")
	if tb.len() != 2 {
		t.Fatalf("len = %d, want 2", tb.len())
	}
	if _, ok := tb.lookup("k2"); ok {
		t.Fatal("k2 survived eviction despite being LRU")
	}
	if e, ok := tb.lookup("k1"); !ok || e.etag != "1111111111111111" {
		t.Fatalf("k1 = %+v ok=%v, want refreshed entry kept", e, ok)
	}
	// Upsert replaces in place, no growth.
	tb.learn("k1", "aaaaaaaaaaaaaaaa", "b9")
	if e, _ := tb.lookup("k1"); e.etag != "aaaaaaaaaaaaaaaa" || e.backend != "b9" {
		t.Fatalf("upsert did not replace: %+v", e)
	}
	if tb.len() != 2 {
		t.Fatalf("len after upsert = %d, want 2", tb.len())
	}
	// Empty key/etag are never stored.
	tb.learn("", "bbbbbbbbbbbbbbbb", "b")
	tb.learn("k4", "", "b")
	if tb.len() != 2 {
		t.Fatalf("len after junk learns = %d, want 2", tb.len())
	}
}

// TestRawETagFromHeader: only tags shaped exactly like the serving
// tier's (`"<16 hex>-<format>"`, weak or strong) populate the table.
func TestRawETagFromHeader(t *testing.T) {
	cases := []struct{ in, want string }{
		{`"0123456789abcdef-vtk"`, "0123456789abcdef"},
		{`"0123456789abcdef-off"`, "0123456789abcdef"},
		{`W/"0123456789abcdef-vtk"`, "0123456789abcdef"},
		{`  "0123456789abcdef-vtk" `, "0123456789abcdef"},
		{`"0123456789ABCDEF-vtk"`, ""}, // uppercase hex
		{`"0123456789abcde-vtk"`, ""},  // 15 hex
		{`"0123456789abcdef"`, ""},     // no format suffix
		{`0123456789abcdef-vtk`, ""},   // unquoted
		{`"zzzzzzzzzzzzzzzz-vtk"`, ""}, // non-hex
		{`"*"`, ""},
		{`"-vtk"`, ""},
		{``, ""},
		{`"`, ""},
	}
	for _, tc := range cases {
		if got := rawETagFromHeader(tc.in); got != tc.want {
			t.Errorf("rawETagFromHeader(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestRouterLocal304ShortCircuit: once a response's entity tag is
// learned, a conditional request whose If-None-Match matches is
// answered 304 by the router itself — no backend round trip, no body —
// and a non-matching validator still forwards.
func TestRouterLocal304ShortCircuit(t *testing.T) {
	raw := "0123456789abcdef"
	fleet := newCacheFleet(t, 1, raw)
	r := newTestRouter(t, Config{Backends: cacheFleetURLs(fleet)})
	probeAllCache(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	body := []byte("fake-nrrd-payload-etag")
	entity := serve.EntityTag(raw, "vtk")

	resp := postMesh(t, rts, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != entity {
		t.Fatalf("relayed ETag %q, want %q", got, entity)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if st := r.Stats(); st.ETagEntries != 1 {
		t.Fatalf("etag table has %d entries after a relayed 200, want 1", st.ETagEntries)
	}

	// Matching validator: local 304, backend untouched.
	resp = postMesh(t, rts, body, map[string]string{"If-None-Match": entity})
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional request: status %d, want 304", resp.StatusCode)
	}
	if len(b) != 0 {
		t.Fatalf("304 shipped %d body bytes", len(b))
	}
	if got := resp.Header.Get("ETag"); got != entity {
		t.Fatalf("304 ETag %q, want %q", got, entity)
	}
	if got := fleet[0].meshHits.Load(); got != 1 {
		t.Fatalf("local 304 still hit the backend (%d mesh hits)", got)
	}
	st := r.Stats()
	if st.ETag304s != 1 {
		t.Fatalf("etag_304s = %d, want 1", st.ETag304s)
	}
	if st.ProxiedJobs != st.CompletedJobs+st.FailedJobs || st.CompletedJobs != 2 {
		t.Fatalf("ledger after local 304: %+v", st)
	}

	// Wildcard matches too (RFC 9110 If-None-Match: *).
	resp = postMesh(t, rts, body, map[string]string{"If-None-Match": "*"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("wildcard conditional: status %d, want 304", resp.StatusCode)
	}

	// Stale validator forwards — the backend stays authoritative.
	resp = postMesh(t, rts, body, map[string]string{"If-None-Match": `"ffffffffffffffff-vtk"`})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional: status %d, want 200 from backend", resp.StatusCode)
	}
	if got := fleet[0].meshHits.Load(); got != 2 {
		t.Fatalf("stale conditional did not forward (%d mesh hits, want 2)", got)
	}

	// A different format is a different entity: the raw etag matches but
	// the suffix does not, so the request must forward, not 304.
	req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/mesh?format=off", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", entity) // vtk entity vs off request
	offResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	offResp.Body.Close()
	if offResp.StatusCode == http.StatusNotModified {
		t.Fatal("format-mismatched validator answered 304 locally")
	}
}

// TestRouterReplicaCacheLadder: when the backend that served a key
// goes away, the router walks the remaining candidates cache-only
// before paying a full re-mesh — transport-failure trigger on the
// request that discovers the death, unhealthy-server trigger once the
// node is ejected — and falls back to a full mesh on a cache miss.
func TestRouterReplicaCacheLadder(t *testing.T) {
	raw := "0123456789abcdef"
	fleet := newCacheFleet(t, 2, raw)
	part := &partition{}
	r := newTestRouter(t, Config{
		Backends:      cacheFleetURLs(fleet),
		Replicas:      2,
		FailThreshold: 1, // first transport failure ejects
		Transport:     part,
	})
	probeAllCache(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	body := []byte("fake-nrrd-payload-replica")
	owner := r.Owner(meshRouteKey(t, body))
	var ownerStub, survivor *cacheStub
	for _, b := range fleet {
		if b.ts.URL == owner {
			ownerStub = b
		} else {
			survivor = b
		}
	}

	// Warm: the owner serves a full mesh; the router learns (key → etag, owner).
	resp := postMesh(t, rts, body, nil)
	b1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b1) != "full-"+ownerStub.id {
		t.Fatalf("warm request: status %d body %q", resp.StatusCode, b1)
	}

	// The survivor holds the result (shared cache dir / replication in
	// the real deployment); the owner dies.
	survivor.cached.Store(true)
	part.set(owner, true)

	// Trigger 2: the forward to the still-"healthy" owner fails mid-walk;
	// the ladder probes the survivor cache-only and relays the hit.
	resp = postMesh(t, rts, body, nil)
	b2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b2) != "cached-"+survivor.id {
		t.Fatalf("post-death request: status %d body %q, want the survivor's cached copy", resp.StatusCode, b2)
	}
	if got := resp.Header.Get(serve.CacheOnlyHeader); got != "hit" {
		t.Fatalf("cache-served response lost the %s marker (%q)", serve.CacheOnlyHeader, got)
	}
	if got := survivor.meshHits.Load(); got != 0 {
		t.Fatalf("replica hit still re-meshed on the survivor (%d mesh hits)", got)
	}
	if st := r.Stats(); st.ReplicaCacheHits != 1 {
		t.Fatalf("replica_cache_hits = %d, want 1", st.ReplicaCacheHits)
	}
	// The transport failure ejected the owner (FailThreshold=1).
	for _, h := range r.HealthyBackends() {
		if h == owner {
			t.Fatal("owner still in ring after the discovering request")
		}
	}

	// The cache hit re-learned the key's server: the survivor is now the
	// recorded backend, so a healthy-survivor request forwards normally.
	// Flip the fleet — the survivor dies (via a probe, before any request
	// discovers it), the old owner heals and rejoins — and the next
	// request hits trigger 1: recorded server known-unhealthy, probe the
	// ladder cache-first without a failed forward.
	part.set(owner, false)
	r.ProbeOnce(owner) // one passing probe rejoins the old owner
	part.set(survivor.ts.URL, true)
	r.ProbeOnce(survivor.ts.URL) // FailThreshold=1: one failed probe ejects
	ownerStub.cached.Store(true)

	resp = postMesh(t, rts, body, nil)
	b3, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b3) != "cached-"+ownerStub.id {
		t.Fatalf("trigger-1 request: status %d body %q, want the owner's cached copy", resp.StatusCode, b3)
	}
	if got := ownerStub.meshHits.Load(); got != 1 {
		t.Fatalf("trigger-1 replica hit re-meshed (owner mesh hits %d, want 1 from warm-up)", got)
	}
	st := r.Stats()
	if st.ReplicaCacheHits != 2 {
		t.Fatalf("replica_cache_hits = %d, want 2", st.ReplicaCacheHits)
	}

	// Miss path: the recorded server (now the owner again) stays ejected
	// by hand; its cache goes cold. The probe 404s, the ladder moves on
	// to a full re-mesh.
	part.set(survivor.ts.URL, false)
	r.ProbeOnce(survivor.ts.URL) // survivor rejoins
	r.ejectBackend(owner)        // recorded server unhealthy again
	ownerStub.cached.Store(false)
	survivor.cached.Store(false)
	resp = postMesh(t, rts, body, nil)
	b4, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b4) != "full-"+survivor.id {
		t.Fatalf("miss-path request: status %d body %q, want a full re-mesh", resp.StatusCode, b4)
	}
	if got := survivor.meshHits.Load(); got != 1 {
		t.Fatalf("miss path mesh hits = %d, want 1", got)
	}
	st = r.Stats()
	if st.ReplicaCacheMisses < 1 {
		t.Fatalf("replica_cache_misses = %d, want >=1", st.ReplicaCacheMisses)
	}
	if st.ProxiedJobs != st.CompletedJobs+st.FailedJobs {
		t.Fatalf("ledger unbalanced: %+v", st)
	}
}

// TestRouterDrainHandoff: POST /v1/drain tells the backend to drain,
// learns its announced MRU keys into the ETag table, and ejects the
// node — so conditional requests for its keys keep 304ing locally and
// cache-only reads route to survivors, with no window where new work
// lands on the draining node.
func TestRouterDrainHandoff(t *testing.T) {
	raw := "0123456789abcdef"
	imageKey := strings.Repeat("0123456789abcdef", 4)
	fleet := newCacheFleet(t, 2, raw)
	fleet[0].drainKeys = []map[string]string{
		{"image_key": imageKey, "variant": "", "etag": raw},
	}
	r := newTestRouter(t, Config{Backends: cacheFleetURLs(fleet)})
	probeAllCache(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	// Unknown backend is a 400, not a drain of something else.
	resp, err := http.Post(rts.URL+"/v1/drain?backend=http://nope.invalid:1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend drain: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Post(rts.URL+"/v1/drain?backend="+fleet[0].ts.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var res drainResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	if !res.Ejected || res.KeysPrewarmed != 1 || res.NodeID != fleet[0].id {
		t.Fatalf("drain result = %+v, want ejected with 1 prewarmed key from %s", res, fleet[0].id)
	}
	if got := fleet[0].drainCalls.Load(); got != 1 {
		t.Fatalf("backend saw %d drain calls, want 1", got)
	}
	for _, h := range r.HealthyBackends() {
		if h == fleet[0].ts.URL {
			t.Fatal("drained backend still in the healthy ring")
		}
	}
	st := r.Stats()
	if st.PlannedDrains != 1 || st.ETagEntries != 1 {
		t.Fatalf("stats after drain: drains=%d etag_entries=%d, want 1/1", st.PlannedDrains, st.ETagEntries)
	}

	// The handoff pays off immediately: a conditional request for the
	// drained node's key is answered 304 by the router, touching nobody.
	resp = postMesh(t, rts, []byte("any-body"), map[string]string{
		ImageKeyHeader:  imageKey,
		"If-None-Match": serve.EntityTag(raw, "vtk"),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("post-drain conditional: status %d, want 304", resp.StatusCode)
	}
	if got := r.Stats().ETag304s; got != 1 {
		t.Fatalf("etag_304s = %d, want 1", got)
	}
	if got := fleet[0].meshHits.Load() + fleet[1].meshHits.Load(); got != 0 {
		t.Fatalf("post-drain conditional reached a backend (%d mesh hits)", got)
	}

	// A non-conditional request for that key finds the recorded server
	// unhealthy and reads the survivor's cache instead of re-meshing.
	fleet[1].cached.Store(true)
	resp = postMesh(t, rts, []byte("any-body"), map[string]string{ImageKeyHeader: imageKey})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "cached-"+fleet[1].id {
		t.Fatalf("post-drain read: status %d body %q, want the survivor's cached copy", resp.StatusCode, body)
	}
	if got := r.Stats().ReplicaCacheHits; got != 1 {
		t.Fatalf("replica_cache_hits = %d, want 1", got)
	}
	if got := fleet[1].meshHits.Load(); got != 0 {
		t.Fatalf("post-drain read re-meshed on the survivor (%d)", got)
	}
}

// TestETagDropIf: the conditional drop removes an entry only while it
// still names the backend the caller observed the miss from — a
// concurrent re-home to another backend wins the race and survives.
func TestETagDropIf(t *testing.T) {
	tb := newETagTable(4)
	tb.learn("k", "0123456789abcdef", "b1")
	tb.dropIf("k", "b2") // observed from the wrong backend: keep
	if _, ok := tb.lookup("k"); !ok {
		t.Fatal("dropIf removed an entry re-homed to another backend")
	}
	tb.dropIf("k", "b1")
	if _, ok := tb.lookup("k"); ok {
		t.Fatal("dropIf kept an entry its own backend 404ed on")
	}
	tb.dropIf("missing", "b1") // absent key: no panic, no effect
	if tb.len() != 0 {
		t.Fatalf("len = %d, want 0", tb.len())
	}
}

// TestETagStaleDropOnMiss: when the backend the ETag table attributes
// a key to answers the cache-only probe with 404 cache_miss, the entry
// is dropped. Before the fix the stale attribution lived on — and the
// router kept answering local 304s for a blob no backend held, serving
// clients an entity that could no longer be fetched.
func TestETagStaleDropOnMiss(t *testing.T) {
	// Uppercase raw etag: the stubs' mesh responses carry an
	// unlearnable ETag, so nothing re-homes the entry behind our back.
	fleet := newCacheFleet(t, 2, "ZZZZZZZZZZZZZZZZ")
	part := &partition{}
	r := newTestRouter(t, Config{
		Backends:      cacheFleetURLs(fleet),
		Replicas:      2,
		FailThreshold: 10, // the dead owner stays "healthy": trigger-2 territory
		Transport:     part,
	})
	probeAllCache(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	body := []byte("fake-nrrd-payload-stale-etag")
	key := meshRouteKey(t, body)
	owner := r.Owner(key)
	var survivor *cacheStub
	for _, b := range fleet {
		if b.ts.URL != owner {
			survivor = b
		}
	}

	// The table attributes the key to the survivor — which no longer
	// holds the blob (evicted, disk lost, fsck dropped it) — and the
	// ring owner dies, so the next request walks the cache ladder.
	raw := "0123456789abcdef"
	r.etags.learn(key, raw, survivor.ts.URL)
	part.set(owner, true)

	resp := postMesh(t, rts, body, nil)
	b1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b1) != "full-"+survivor.id {
		t.Fatalf("post-death request: status %d body %q, want a full re-mesh on the survivor", resp.StatusCode, b1)
	}
	if got := survivor.probeHits.Load(); got != 1 {
		t.Fatalf("attributed backend saw %d cache probes, want 1", got)
	}
	st := r.Stats()
	if st.ReplicaCacheMisses != 1 {
		t.Fatalf("replica_cache_misses = %d, want 1", st.ReplicaCacheMisses)
	}
	// The regression: the 404 from the very backend the table blamed
	// must drop the entry. Before the fix ETagEntries stayed 1 here.
	if st.ETagEntries != 0 {
		t.Fatalf("etag table still holds %d entries after the attributed backend 404ed", st.ETagEntries)
	}

	// Client-visible staleness check: a validator naming the gone
	// entity must forward and re-mesh, never 304 locally against a
	// blob nobody can produce.
	resp = postMesh(t, rts, body, map[string]string{"If-None-Match": serve.EntityTag(raw, "vtk")})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		t.Fatal("router answered 304 for an entity no backend holds")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conditional re-mesh: status %d, want 200", resp.StatusCode)
	}
}

// TestHedgedCacheProbeWinner: a cache-only probe that stalls past the
// hedge delay gets a speculative second probe at the next rung; the
// hedge's hit is relayed, the win is counted, the stalled loser is
// canceled before it ever reaches its backend, and the key re-homes to
// the winner.
func TestHedgedCacheProbeWinner(t *testing.T) {
	raw := "0123456789abcdef"
	fleet := newCacheFleet(t, 2, raw)
	for _, b := range fleet {
		b.cached.Store(true)
	}
	dead := "http://127.0.0.1:9" // configured but never healthy
	r := newTestRouter(t, Config{
		Backends:      append(cacheFleetURLs(fleet), dead),
		Replicas:      2,
		HedgeMinDelay: 20 * time.Millisecond,
	})
	probeAllCache(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	body := []byte("fake-nrrd-payload-hedge")
	key := meshRouteKey(t, body)
	// Attribute the key to the dead node: trigger 1 arms the ladder.
	r.etags.learn(key, raw, dead)
	cands := r.candidates(key)
	if len(cands) < 2 {
		t.Fatalf("want 2 healthy ladder candidates, have %v", cands)
	}
	stubOf := func(u string) *cacheStub {
		for _, b := range fleet {
			if b.ts.URL == u {
				return b
			}
		}
		t.Fatalf("no stub for %s", u)
		return nil
	}
	primary, hedge := stubOf(cands[0]), stubOf(cands[1])

	// Stall only the first probe (the primary): its hedge races ahead.
	restore := faultinject.Enable(faultinject.New(faultinject.Config{
		Seed:     1,
		Rates:    map[faultinject.Point]float64{faultinject.HedgeLoser: 1},
		MaxFires: map[faultinject.Point]int64{faultinject.HedgeLoser: 1},
		Delay:    400 * time.Millisecond,
	}))
	defer restore()

	resp := postMesh(t, rts, body, nil)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(got) != "cached-"+hedge.id {
		t.Fatalf("hedged request: status %d body %q, want the hedge's cached copy %q",
			resp.StatusCode, got, "cached-"+hedge.id)
	}
	if h := resp.Header.Get(serve.CacheOnlyHeader); h != "hit" {
		t.Fatalf("%s = %q, want \"hit\"", serve.CacheOnlyHeader, h)
	}
	st := r.Stats()
	if st.HedgedWon != 1 || st.HedgedLost != 0 {
		t.Fatalf("hedged won=%d lost=%d, want 1/0", st.HedgedWon, st.HedgedLost)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want exactly the hedge's withdrawal", st.Retries)
	}
	if st.ReplicaCacheHits != 1 {
		t.Fatalf("replica_cache_hits = %d, want 1", st.ReplicaCacheHits)
	}
	// The key re-homed to the winner.
	if ent, ok := r.etags.lookup(key); !ok || ent.backend != hedge.ts.URL {
		t.Fatalf("etag entry = %+v ok=%v, want re-homed to the hedge winner", ent, ok)
	}
	// The loser was canceled while still stalled: by the time its
	// injected delay elapses, its context is gone and the probe never
	// reaches the backend.
	time.Sleep(600 * time.Millisecond)
	if got := primary.probeHits.Load(); got != 0 {
		t.Fatalf("canceled loser still probed its backend %d times", got)
	}
}

// TestRetryBudgetExhausted: with an empty token bucket every round
// trip beyond a request's first is refused — the fallback ladder stops
// before touching a survivor and the client gets the budget-exhausted
// 503 — and successful relays earn the allowance back at the
// configured ratio, after which exactly one funded probe rescues the
// next failover.
func TestRetryBudgetExhausted(t *testing.T) {
	raw := "0123456789abcdef"
	fleet := newCacheFleet(t, 2, raw)
	part := &partition{}
	r := newTestRouter(t, Config{
		Backends:        cacheFleetURLs(fleet),
		Replicas:        2,
		FailThreshold:   10,
		RetryBudgetSeed: -1, // boot with an empty bucket
		Transport:       part,
	})
	probeAllCache(r, fleet)
	rts := httptest.NewServer(r.Handler())
	defer rts.Close()

	body := []byte("fake-nrrd-payload-budget")
	key := meshRouteKey(t, body)
	owner := r.Owner(key)
	var ownerStub, survivor *cacheStub
	for _, b := range fleet {
		if b.ts.URL == owner {
			ownerStub = b
		} else {
			survivor = b
		}
	}

	// Empty bucket: the owner's transport failure cannot buy a single
	// fallback round trip.
	part.set(owner, true)
	resp := postMesh(t, rts, body, nil)
	code, reason, retryAfterS := decodeEnvelope(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-bucket failover: status %d, want 503", resp.StatusCode)
	}
	if code != serve.CodeUnavailable || !strings.Contains(reason, "retry budget exhausted") {
		t.Fatalf("envelope code=%q reason=%q, want %q naming the exhausted budget", code, reason, serve.CodeUnavailable)
	}
	if retryAfterS < 1 || retryAfterS > 30 {
		t.Fatalf("retry_after_s = %d outside the [1,30] clamp", retryAfterS)
	}
	if got := survivor.meshHits.Load() + survivor.probeHits.Load(); got != 0 {
		t.Fatalf("the exhausted budget still let %d round trips reach the survivor", got)
	}
	st := r.Stats()
	if st.Retries != 0 || st.RetryExhausted != 2 {
		t.Fatalf("retries=%d exhausted=%d, want 0/2 (cache rung + fallback forward both refused)",
			st.Retries, st.RetryExhausted)
	}

	// Successful relays at the default 0.1 ratio earn the allowance
	// back; 12 of them overshoot one whole token (10 would leave the
	// sum a rounding hair below 1.0 and the withdraw would refuse).
	part.set(owner, false)
	for i := 0; i < 12; i++ {
		resp := postMesh(t, rts, body, nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("refill relay %d: status %d", i, resp.StatusCode)
		}
	}
	if tok := r.Stats().RetryBudgetTokens; tok < 1 || tok > 1.3 {
		t.Fatalf("budget tokens = %g after 12 ok relays, want ~1.2", tok)
	}
	if got := ownerStub.meshHits.Load(); got != 12 {
		t.Fatalf("owner served %d relays, want 12", got)
	}

	// The earned token funds exactly one fallback probe, which rescues
	// the next failover from the survivor's cache.
	survivor.cached.Store(true)
	part.set(owner, true)
	resp = postMesh(t, rts, body, nil)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(got) != "cached-"+survivor.id {
		t.Fatalf("funded failover: status %d body %q, want the survivor's cached copy", resp.StatusCode, got)
	}
	if st := r.Stats(); st.Retries != 1 {
		t.Fatalf("retries = %d, want exactly the funded probe", st.Retries)
	}
}
