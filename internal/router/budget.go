package router

import "sync"

// retryBudget is a Finagle-style token bucket bounding retry
// amplification fleet-wide: every successful relay deposits ratio
// tokens, every retry (fallback forward, extra cache probe, hedge)
// withdraws one. With ratio 0.1 a healthy router earns one retry per
// ten successes — so against a dying fleet, where successes stop, the
// ladders stop fanning out instead of multiplying every client request
// into Replicas× backend load. The seed is the burst allowance a
// freshly booted router may spend before it has earned anything.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	cap    float64
}

// newRetryBudget builds a bucket earning ratio tokens per success,
// holding seed tokens at boot, capped at max(seed, 100) so a long
// quiet streak of successes cannot bank an unbounded retry storm.
func newRetryBudget(ratio, seed float64) *retryBudget {
	c := seed
	if c < 100 {
		c = 100
	}
	return &retryBudget{tokens: seed, ratio: ratio, cap: c}
}

// deposit credits one successful request's worth of retry allowance.
func (b *retryBudget) deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// withdraw takes one token, reporting false when the bucket is empty —
// the caller must not retry.
func (b *retryBudget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// balance reports the current token count (stats/metrics surface).
func (b *retryBudget) balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
