// Command pi2md is the PI2M meshing daemon: an HTTP server
// multiplexing image-to-mesh requests over a bounded pool of warm
// sessions, with admission control, a crash-safe persistent result
// cache, Prometheus metrics and graceful drain.
//
//	pi2md -addr :8080 -pool 4 -queue 32 -cache-dir /var/lib/pi2md/cache
//
//	curl -s --data-binary @brain.nrrd 'localhost:8080/v1/mesh?format=vtk' > brain.vtk
//	curl -s -H 'If-None-Match: "<etag>-vtk"' --data-binary @brain.nrrd localhost:8080/v1/mesh
//	curl -s localhost:8080/v1/cache/<image-sha256>            # body-less cache read (404 = cache_miss)
//	curl -s -X POST localhost:8080/v1/drain                   # announce drain, hand off warm keys
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM the daemon stops accepting, lets in-flight jobs
// finish (bounded by -drain-timeout), checkpoints the cache index, and
// exits. A kill -9 loses none of the cached meshes: the next boot's
// fsck pass re-verifies every blob and rebuilds the index.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pi2md: ")

	var (
		addr         = flag.String("addr", ":8080", "listen address")
		debugAddr    = flag.String("debug-addr", "", "optional net/http/pprof listener (never on the serving port; empty disables)")
		pool         = flag.Int("pool", 2, "warm sessions (run concurrency ceiling)")
		queue        = flag.Int("queue", 16, "max jobs queued beyond the running ones")
		workers      = flag.Int("workers", 0, "refinement threads per session (0 = GOMAXPROCS)")
		delta        = flag.Float64("delta", 0, "δ sampling parameter in world units (0 = 2x min voxel spacing)")
		maxBytes     = flag.Int64("max-bytes", 64<<20, "request body size cap")
		timeout      = flag.Duration("timeout", 60*time.Second, "default per-job deadline (queue wait + run)")
		idleEvict    = flag.Duration("idle-evict", 10*time.Minute, "evict sessions idle this long (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		imageCache   = flag.Int("image-cache", 8, "parsed input images retained by content hash (<0 disables)")
		imageCacheB  = flag.Int64("image-cache-bytes", 256<<20, "byte budget for the parsed-image LRU cache (<0 disables)")
		cacheDir     = flag.String("cache-dir", "", "persistent result-cache directory (empty disables the cache)")
		cacheMaxB    = flag.Int64("cache-max-bytes", 1<<30, "LRU byte budget for the persistent result cache")
		coalesceMax  = flag.Int("coalesce-max", 32, "max jobs sharing one run via single-flight coalescing (1 disables)")
		livelock     = flag.Duration("livelock-timeout", 2*time.Minute, "per-run livelock watchdog (0 disables)")
		suspect      = flag.Int("suspect-threshold", 3, "consecutive suspect runs before a session is quarantined and rebuilt")
		brkThresh    = flag.Int("breaker-threshold", 3, "consecutive leader failures tripping a per-image circuit breaker (<0 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker fast-fail window before a half-open probe")
		wdFactor     = flag.Float64("watchdog-factor", 4, "runaway-run watchdog limit as a multiple of the job deadline (<0 disables)")
		wdGrace      = flag.Duration("watchdog-grace", 2*time.Second, "grace after watchdog cancel before the session is abandoned")
		solveTimeout = flag.Duration("solve-timeout", 30*time.Second, "ceiling on the FEM solve stage of /v1/simulate (caps per-request asks)")
		brownout     = flag.Bool("brownout", true, "degrade mesh quality instead of rejecting under overload (X-Pi2md-Brownout responses)")
		brownoutLad  = flag.String("brownout-ladder", "", "degradation ladder: tiers separated by /, knobs re=,fa=,ds=,n= (empty = built-in re=3,fa=15/re=4,fa=10,ds=2,n=100000)")
		brownoutHold = flag.Duration("brownout-hold", 5*time.Second, "calm period before the brownout controller steps back up one quality tier")
	)
	flag.Parse()

	ladder, err := serve.ParseBrownoutLadder(*brownoutLad)
	if err != nil {
		log.Fatalf("-brownout-ladder: %v", err)
	}

	var cache *cachestore.Store
	if *cacheDir != "" {
		var rep cachestore.FsckReport
		var err error
		cache, rep, err = cachestore.Open(cachestore.Config{Dir: *cacheDir, MaxBytes: *cacheMaxB})
		if err != nil {
			log.Fatalf("opening result cache: %v", err)
		}
		log.Printf("result cache %s: %d entries, %s", *cacheDir, cache.Len(), rep)
		if cache.Degraded() {
			log.Printf("result cache opened degraded (disk refused writes at boot); serving memory-only")
		}
	}

	srv, err := serve.NewServer(serve.Config{
		PoolSize:         *pool,
		QueueDepth:       *queue,
		DefaultTimeout:   *timeout,
		MaxRequestBytes:  *maxBytes,
		ImageCacheSize:   *imageCache,
		ImageCacheBytes:  *imageCacheB,
		Cache:            cache,
		CoalesceMax:      *coalesceMax,
		SuspectThreshold: *suspect,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		WatchdogFactor:   *wdFactor,
		WatchdogGrace:    *wdGrace,
		SolveTimeout:     *solveTimeout,
		Brownout:         *brownout,
		BrownoutLadder:   ladder,
		BrownoutHold:     *brownoutHold,
		Session: core.Config{
			Workers:         *workers,
			Delta:           *delta,
			LivelockTimeout: *livelock,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if *idleEvict > 0 {
		ticker := time.NewTicker(*idleEvict / 2)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if n := srv.EvictIdle(*idleEvict); n > 0 {
					log.Printf("evicted %d idle session(s)", n)
				}
			}
		}()
	}

	// The pprof surface lives on its own listener, opt-in, and is never
	// registered on the serving mux: profiling endpoints leak heap and
	// goroutine internals and must not be reachable from mesh clients.
	if *debugAddr != "" {
		if *debugAddr == *addr {
			log.Fatalf("-debug-addr %s must differ from the serving -addr", *debugAddr)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("pprof on %s", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("draining (waiting up to %v for in-flight jobs)", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain cut short: %v", err)
		}
		if cache != nil {
			if err := cache.Close(); err != nil {
				log.Printf("closing result cache: %v", err)
			}
		}
		hs.Shutdown(ctx)
	}()

	log.Printf("serving on %s (pool=%d queue=%d)", *addr, *pool, *queue)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("bye")
}
