// Command pi2mrouter is the distributed meshing tier's router: a thin
// HTTP proxy that consistent-hashes each job's (image SHA-256, quality
// variant) key onto a fleet of pi2md backends, so repeat and
// coalescable traffic for an image lands on the node whose warm
// sessions, result cache, and circuit breakers already know it.
//
//	pi2mrouter -addr :8090 -backends http://node1:8080,http://node2:8080
//
//	curl -s --data-binary @brain.nrrd 'localhost:8090/v1/mesh?format=vtk' > brain.vtk
//	curl -s -H 'If-None-Match: "<etag>-vtk"' --data-binary @brain.nrrd localhost:8090/v1/mesh
//	curl -s -X POST 'localhost:8090/v1/drain?backend=http://node1:8080'
//	curl -s localhost:8090/readyz
//	curl -s localhost:8090/v1/stats
//	curl -s localhost:8090/metrics
//
// Backends are health-probed on /readyz at jittered intervals; a node
// failing -fail-threshold consecutive probes (or proxy attempts) is
// ejected from the ring and its keys re-home to the surviving
// replicas with minimal movement. One passing probe rejoins it. While
// a key is in flight, later requests for it are proxied to the same
// backend so they join its coalescing flight rather than re-running
// the job — cross-node single-flight.
//
// The router keeps a bounded (route key → entity tag, backend) table
// learned from relayed responses: If-None-Match requests that name the
// learned entity are answered 304 locally without a backend round
// trip, and when a key's last-known server drops out of the ring the
// router probes the surviving replicas cache-only (GET /v1/cache/…)
// before paying a full re-mesh. POST /v1/drain?backend=… runs the
// planned-drain handoff: the backend announces its warmest cached keys
// (flipping itself to draining), the router pre-warms its table with
// them, then ejects the node immediately. On SIGINT/SIGTERM the router
// stops accepting, lets in-flight proxies finish (bounded by
// -drain-timeout), and exits; it holds no durable state — the ETag
// table is a rebuildable cache.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pi2mrouter: ")

	var (
		addr          = flag.String("addr", ":8090", "listen address")
		backends      = flag.String("backends", "", "comma-separated pi2md base URLs (required)")
		replicas      = flag.Int("replicas", 2, "fallback ladder depth: distinct backends tried per key")
		vnodes        = flag.Int("vnodes", 128, "virtual nodes per backend on the hash ring")
		probeInterval = flag.Duration("probe-interval", time.Second, "mean backend health-probe period (jittered)")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe deadline")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive failures ejecting a backend from the ring")
		maxBytes      = flag.Int64("max-bytes", 64<<20, "body cap on the buffered (key-deriving) routing path")
		etagCache     = flag.Int("etag-cache", 4096, "entries in the (route key -> ETag) table behind local 304s and replica cache reads")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight proxies")
		retryBudget   = flag.Float64("retry-budget", 0.1, "retry tokens earned per successful relay; retries beyond a request's first attempt spend one (<0 disables gating)")
		hedgeQuantile = flag.Float64("hedge-quantile", 0.95, "probe-latency quantile after which a replica cache probe is hedged (<0 disables hedging)")
	)
	flag.Parse()

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	if len(list) == 0 {
		log.Fatal("at least one backend is required (-backends http://host:port,...)")
	}

	rt, err := router.New(router.Config{
		Backends:        list,
		Replicas:        *replicas,
		VNodes:          *vnodes,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		FailThreshold:   *failThreshold,
		MaxRequestBytes: *maxBytes,
		ETagCacheSize:   *etagCache,
		RetryBudget:     *retryBudget,
		HedgeQuantile:   *hedgeQuantile,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("draining (waiting up to %v for in-flight proxies)", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		hs.Shutdown(ctx)
		rt.Stop()
	}()

	log.Printf("routing on %s over %d backend(s): %s", *addr, len(list), strings.Join(list, ", "))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("bye")
}
