// Command bench runs the session cold-vs-warm benchmark pairs over
// the standard phantoms plus the pool-style repeated-run throughput
// sweep and the serving-layer coalescing sweep, and emits a
// machine-readable JSON report — the artifact the CI benchmark smoke
// job uploads.
//
//	bench                      # full scales, writes BENCH_pr4.json
//	bench -short -o out.json   # reduced scales for CI smoke runs
//	bench -pool 1,2,4          # pool concurrency levels to sweep
//	bench -coalesce 1,8        # coalesce-group caps to sweep
//
// For each phantom it measures a cold run (fresh Session per
// iteration: every arena, grid and EDT buffer allocated from scratch)
// and a warm run (one Session reused across iterations), and reports
// ns/op, allocs/op, bytes/op, cells/sec, and the warm-vs-cold deltas.
// The pool sweep then hammers a pool of k warm sessions from k
// clients and reports aggregate runs/sec and cells/sec per level —
// the serving layer's capacity curve. The coalesce sweep hammers one
// in-process Server with identical jobs at each coalesce cap and
// reports jobs/sec, actual runs, and the lease-occupancy histogram
// (response encoding happens off-lease from snapshots, so occupancy
// tracks meshing alone).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	pi2m "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// Case is one measured benchmark configuration.
type Case struct {
	Phantom     string  `json:"phantom"`
	Mode        string  `json:"mode"` // "cold" or "warm"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Elements    int     `json:"elements"`
}

// Delta compares a phantom's warm run against its cold run; negative
// percentages mean the warm path is cheaper.
type Delta struct {
	Phantom        string  `json:"phantom"`
	NsDeltaPct     float64 `json:"ns_delta_pct"`
	AllocsDeltaPct float64 `json:"allocs_delta_pct"`
	BytesDeltaPct  float64 `json:"bytes_delta_pct"`
}

// PoolCase is one pool-throughput measurement: k clients hammering a
// pool of k warm sessions with the same image for a fixed wall time.
type PoolCase struct {
	Phantom     string  `json:"phantom"`
	Sessions    int     `json:"sessions"`
	Clients     int     `json:"clients"`
	Runs        int64   `json:"runs"`
	WallSeconds float64 `json:"wall_seconds"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	CellsPerSec float64 `json:"cells_per_sec"`
	EDTHits     int64   `json:"edt_cache_hits"`
	WarmRuns    int64   `json:"warm_runs"`
}

// CoalesceCase is one serving-layer coalescing measurement: clients
// hammering one in-process Server with identical jobs under a given
// coalesce-group cap. Runs counts actual meshing runs (leaders);
// CoalescedJobs counts jobs served from another job's snapshot. The
// lease-occupancy histogram shows how long sessions stayed leased —
// encoding runs off-lease from snapshots, so MeanLeaseMs excludes
// MeanEncodeMs entirely.
type CoalesceCase struct {
	Phantom        string                  `json:"phantom"`
	CoalesceMax    int                     `json:"coalesce_max"`
	Clients        int                     `json:"clients"`
	Jobs           int64                   `json:"jobs"`
	Runs           int64                   `json:"runs"`
	CoalescedJobs  int64                   `json:"coalesced_jobs"`
	WallSeconds    float64                 `json:"wall_seconds"`
	JobsPerSec     float64                 `json:"jobs_per_sec"`
	MeanLeaseMs    float64                 `json:"mean_lease_ms"`
	MeanEncodeMs   float64                 `json:"mean_encode_ms"`
	SnapshotBytes  float64                 `json:"mean_snapshot_bytes"`
	LeaseOccupancy serve.HistogramSnapshot `json:"lease_occupancy"`
}

// Report is the BENCH_pr4.json schema.
type Report struct {
	Benchmark     string         `json:"benchmark"`
	GoVersion     string         `json:"go_version"`
	GOOS          string         `json:"goos"`
	GOARCH        string         `json:"goarch"`
	CPUs          int            `json:"cpus"`
	Workers       int            `json:"workers"`
	Scale         int            `json:"scale"`
	Timestamp     time.Time      `json:"timestamp"`
	Cases         []Case         `json:"cases"`
	Deltas        []Delta        `json:"deltas"`
	PoolCases     []PoolCase     `json:"pool_cases"`
	CoalesceCases []CoalesceCase `json:"coalesce_cases"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	var (
		out      = flag.String("o", "BENCH_pr4.json", "output JSON path (- for stdout)")
		workers  = flag.Int("workers", 2, "refinement threads per run")
		scale    = flag.Int("scale", 32, "phantom edge length in voxels")
		short    = flag.Bool("short", false, "reduced scales for CI smoke runs")
		pool     = flag.String("pool", "1,2,4", "pool concurrency levels to sweep (comma-separated, empty disables)")
		poolTime = flag.Duration("pooltime", 2*time.Second, "wall time per pool level")
		coalesce = flag.String("coalesce", "1,8", "coalesce-group caps to sweep (comma-separated, empty disables)")
	)
	flag.Parse()

	levels, err := parseLevels(*pool)
	if err != nil {
		log.Fatal(err)
	}
	coalesceLevels, err := parseLevels(*coalesce)
	if err != nil {
		log.Fatal(err)
	}

	sc := *scale
	pt := *poolTime
	if *short {
		sc = 24
		if pt > 500*time.Millisecond {
			pt = 500 * time.Millisecond
		}
	}
	phantoms := []struct {
		name string
		im   *pi2m.Image
	}{
		{"sphere", pi2m.SpherePhantom(sc)},
		{"torus", pi2m.TorusPhantom(sc)},
		{"abdominal", experiments.Abdominal(sc + sc/2)},
	}

	rep := Report{
		Benchmark: "session-cold-vs-warm",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Workers:   *workers,
		Scale:     sc,
		Timestamp: time.Now().UTC(),
	}

	for _, ph := range phantoms {
		cold := measure(ph.name, "cold", func(b *testing.B) int {
			elements := 0
			for i := 0; i < b.N; i++ {
				s, err := pi2m.NewSession(
					pi2m.WithThreads(*workers),
					pi2m.WithLivelockTimeout(time.Minute),
				)
				if err != nil {
					log.Fatal(err)
				}
				res, err := s.Run(context.Background(), ph.im)
				if err != nil {
					log.Fatal(err)
				}
				elements = res.Elements()
				s.Close()
			}
			return elements
		})
		warm := measureWarm(ph.name, *workers, ph.im)
		rep.Cases = append(rep.Cases, cold, warm)
		rep.Deltas = append(rep.Deltas, Delta{
			Phantom:        ph.name,
			NsDeltaPct:     pctDelta(warm.NsPerOp, cold.NsPerOp),
			AllocsDeltaPct: pctDelta(float64(warm.AllocsPerOp), float64(cold.AllocsPerOp)),
			BytesDeltaPct:  pctDelta(float64(warm.BytesPerOp), float64(cold.BytesPerOp)),
		})
	}

	for _, d := range rep.Deltas {
		fmt.Printf("%-10s warm vs cold: time %+.1f%%, allocs %+.1f%%, bytes %+.1f%%\n",
			d.Phantom, d.NsDeltaPct, d.AllocsDeltaPct, d.BytesDeltaPct)
	}

	// Pool-style repeated-run throughput: the serving layer's capacity
	// curve over the first phantom.
	for _, k := range levels {
		pc := measurePool(phantoms[0].name, phantoms[0].im, k, *workers, pt)
		rep.PoolCases = append(rep.PoolCases, pc)
		fmt.Printf("%-10s pool k=%d: %.1f runs/sec, %.0f cells/sec (%d runs, %d EDT hits)\n",
			pc.Phantom, k, pc.RunsPerSec, pc.CellsPerSec, pc.Runs, pc.EDTHits)
	}

	// Coalescing sweep on the encode-heavy phantom: identical jobs at
	// each group cap. cap=1 is the no-coalescing baseline; higher caps
	// show single-flight fan-out turning jobs into shared runs.
	last := phantoms[len(phantoms)-1]
	for _, cmax := range coalesceLevels {
		cc := measureCoalesce(last.name, last.im, cmax, *workers, pt)
		rep.CoalesceCases = append(rep.CoalesceCases, cc)
		fmt.Printf("%-10s coalesce max=%d: %.1f jobs/sec (%d jobs, %d runs, %d coalesced), lease %.1fms, encode %.1fms\n",
			cc.Phantom, cmax, cc.JobsPerSec, cc.Jobs, cc.Runs, cc.CoalescedJobs, cc.MeanLeaseMs, cc.MeanEncodeMs)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure runs fn under testing.Benchmark (which auto-sizes b.N to
// roughly one second of work) and folds the result into a Case. fn
// returns the element count of its last run so cells/sec can be
// derived from ns/op.
func measure(phantom, mode string, fn func(b *testing.B) int) Case {
	elements := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		elements = fn(b)
	})
	return newCase(phantom, mode, elements, r)
}

// measureWarm primes one session outside the timer and re-runs it
// inside, so the measurement covers only the reset-and-reuse path.
func measureWarm(phantom string, workers int, im *pi2m.Image) Case {
	s, err := pi2m.NewSession(
		pi2m.WithThreads(workers),
		pi2m.WithLivelockTimeout(time.Minute),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background(), im); err != nil {
		log.Fatal(err)
	}
	elements := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := s.Run(context.Background(), im)
			if err != nil {
				log.Fatal(err)
			}
			elements = res.Elements()
		}
	})
	return newCase(phantom, "warm", elements, r)
}

func newCase(phantom, mode string, elements int, r testing.BenchmarkResult) Case {
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	cellsPerSec := 0.0
	if nsPerOp > 0 {
		cellsPerSec = float64(elements) / (nsPerOp / 1e9)
	}
	return Case{
		Phantom:     phantom,
		Mode:        mode,
		Iterations:  r.N,
		NsPerOp:     nsPerOp,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		CellsPerSec: cellsPerSec,
		Elements:    elements,
	}
}

// pctDelta is the warm-relative-to-cold change in percent.
func pctDelta(warm, cold float64) float64 {
	if cold == 0 {
		return 0
	}
	return 100 * (warm - cold) / cold
}

// parseLevels parses the -pool flag ("1,2,4") into concurrency levels.
func parseLevels(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("bench: bad -pool level %q", f)
		}
		out = append(out, k)
	}
	return out, nil
}

// measurePool warms a pool of k sessions on the image, then hammers
// it from k clients for the given wall time, reporting aggregate
// throughput — the repeated-run capacity of the serving layer at that
// concurrency.
func measurePool(phantom string, im *pi2m.Image, k, workers int, wall time.Duration) PoolCase {
	pool, err := pi2m.NewPool(k,
		pi2m.WithThreads(workers),
		pi2m.WithLivelockTimeout(time.Minute),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	key := phantom

	// Warm every session: hold k leases at once so each session runs.
	leases := make([]*pi2m.PoolLease, k)
	for i := range leases {
		l, err := pool.Checkout(context.Background(), key)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := l.Run(context.Background(), im); err != nil {
			log.Fatal(err)
		}
		leases[i] = l
	}
	for _, l := range leases {
		l.Release()
	}

	var (
		wg    sync.WaitGroup
		runs  atomic.Int64
		cells atomic.Int64
	)
	start := time.Now()
	deadline := start.Add(wall)
	for c := 0; c < k; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l, err := pool.Checkout(context.Background(), key)
				if err != nil {
					log.Fatal(err)
				}
				res, err := l.Run(context.Background(), im)
				if err != nil {
					log.Fatal(err)
				}
				cells.Add(int64(res.Elements()))
				l.Release()
				runs.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	st := pool.Stats()
	return PoolCase{
		Phantom:     phantom,
		Sessions:    k,
		Clients:     k,
		Runs:        runs.Load(),
		WallSeconds: elapsed,
		RunsPerSec:  float64(runs.Load()) / elapsed,
		CellsPerSec: float64(cells.Load()) / elapsed,
		EDTHits:     int64(st.Sessions.WarmEDTHits),
		WarmRuns:    int64(st.Sessions.WarmRuns),
	}
}

// measureCoalesce hammers one in-process Server (pool of 2 sessions)
// with identical jobs from 3x that many clients for the given wall
// time, under the given coalesce cap, and each client VTK-encodes its
// snapshot to io.Discard — the off-lease work the lease-occupancy
// histogram must exclude.
func measureCoalesce(phantom string, im *pi2m.Image, cmax, workers int, wall time.Duration) CoalesceCase {
	const poolSize = 2
	clients := 3 * poolSize
	srv, err := serve.NewServer(serve.Config{
		PoolSize:    poolSize,
		QueueDepth:  2 * clients,
		CoalesceMax: cmax,
		Session: core.Config{
			Workers:         workers,
			LivelockTimeout: time.Minute,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	key := "bench-coalesce-" + phantom

	var (
		wg        sync.WaitGroup
		jobs      atomic.Int64
		encodeNs  atomic.Int64
		snapBytes atomic.Int64
	)
	start := time.Now()
	deadline := start.Add(wall)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				sr, err := srv.MeshSnapshot(context.Background(), key, "", im, nil)
				if err != nil {
					log.Fatal(err)
				}
				encStart := time.Now()
				if err := pi2m.WriteVTKSnapshot(io.Discard, sr.Snapshot); err != nil {
					log.Fatal(err)
				}
				encodeNs.Add(time.Since(encStart).Nanoseconds())
				snapBytes.Add(int64(sr.Snapshot.SizeBytes()))
				jobs.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	st := srv.Stats()
	occ := srv.LeaseOccupancy().Snapshot()
	cc := CoalesceCase{
		Phantom:        phantom,
		CoalesceMax:    cmax,
		Clients:        clients,
		Jobs:           jobs.Load(),
		Runs:           st.Accepted - st.Coalesced,
		CoalescedJobs:  st.Coalesced,
		WallSeconds:    elapsed,
		JobsPerSec:     float64(jobs.Load()) / elapsed,
		LeaseOccupancy: occ,
	}
	if occ.Count > 0 {
		cc.MeanLeaseMs = occ.Sum / float64(occ.Count) * 1e3
	}
	if n := jobs.Load(); n > 0 {
		cc.MeanEncodeMs = float64(encodeNs.Load()) / float64(n) / 1e6
		cc.SnapshotBytes = float64(snapBytes.Load()) / float64(n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srv.Drain(ctx)
	return cc
}
