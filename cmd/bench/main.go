// Command bench runs the session cold-vs-warm benchmark pairs over
// the standard phantoms and emits a machine-readable JSON report —
// the artifact the CI benchmark smoke job uploads.
//
//	bench                      # full scales, writes BENCH_pr2.json
//	bench -short -o out.json   # reduced scales for CI smoke runs
//
// For each phantom it measures a cold run (fresh Session per
// iteration: every arena, grid and EDT buffer allocated from scratch)
// and a warm run (one Session reused across iterations), and reports
// ns/op, allocs/op, bytes/op, cells/sec, and the warm-vs-cold deltas.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	pi2m "repro"
	"repro/internal/experiments"
)

// Case is one measured benchmark configuration.
type Case struct {
	Phantom     string  `json:"phantom"`
	Mode        string  `json:"mode"` // "cold" or "warm"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Elements    int     `json:"elements"`
}

// Delta compares a phantom's warm run against its cold run; negative
// percentages mean the warm path is cheaper.
type Delta struct {
	Phantom        string  `json:"phantom"`
	NsDeltaPct     float64 `json:"ns_delta_pct"`
	AllocsDeltaPct float64 `json:"allocs_delta_pct"`
	BytesDeltaPct  float64 `json:"bytes_delta_pct"`
}

// Report is the BENCH_pr2.json schema.
type Report struct {
	Benchmark string    `json:"benchmark"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	CPUs      int       `json:"cpus"`
	Workers   int       `json:"workers"`
	Scale     int       `json:"scale"`
	Timestamp time.Time `json:"timestamp"`
	Cases     []Case    `json:"cases"`
	Deltas    []Delta   `json:"deltas"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	var (
		out     = flag.String("o", "BENCH_pr2.json", "output JSON path (- for stdout)")
		workers = flag.Int("workers", 2, "refinement threads per run")
		scale   = flag.Int("scale", 32, "phantom edge length in voxels")
		short   = flag.Bool("short", false, "reduced scales for CI smoke runs")
	)
	flag.Parse()

	sc := *scale
	if *short {
		sc = 24
	}
	phantoms := []struct {
		name string
		im   *pi2m.Image
	}{
		{"sphere", pi2m.SpherePhantom(sc)},
		{"torus", pi2m.TorusPhantom(sc)},
		{"abdominal", experiments.Abdominal(sc + sc/2)},
	}

	rep := Report{
		Benchmark: "session-cold-vs-warm",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Workers:   *workers,
		Scale:     sc,
		Timestamp: time.Now().UTC(),
	}

	for _, ph := range phantoms {
		cold := measure(ph.name, "cold", func(b *testing.B) int {
			elements := 0
			for i := 0; i < b.N; i++ {
				s, err := pi2m.NewSession(
					pi2m.WithThreads(*workers),
					pi2m.WithLivelockTimeout(time.Minute),
				)
				if err != nil {
					log.Fatal(err)
				}
				res, err := s.Run(context.Background(), ph.im)
				if err != nil {
					log.Fatal(err)
				}
				elements = res.Elements()
				s.Close()
			}
			return elements
		})
		warm := measureWarm(ph.name, *workers, ph.im)
		rep.Cases = append(rep.Cases, cold, warm)
		rep.Deltas = append(rep.Deltas, Delta{
			Phantom:        ph.name,
			NsDeltaPct:     pctDelta(warm.NsPerOp, cold.NsPerOp),
			AllocsDeltaPct: pctDelta(float64(warm.AllocsPerOp), float64(cold.AllocsPerOp)),
			BytesDeltaPct:  pctDelta(float64(warm.BytesPerOp), float64(cold.BytesPerOp)),
		})
	}

	for _, d := range rep.Deltas {
		fmt.Printf("%-10s warm vs cold: time %+.1f%%, allocs %+.1f%%, bytes %+.1f%%\n",
			d.Phantom, d.NsDeltaPct, d.AllocsDeltaPct, d.BytesDeltaPct)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure runs fn under testing.Benchmark (which auto-sizes b.N to
// roughly one second of work) and folds the result into a Case. fn
// returns the element count of its last run so cells/sec can be
// derived from ns/op.
func measure(phantom, mode string, fn func(b *testing.B) int) Case {
	elements := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		elements = fn(b)
	})
	return newCase(phantom, mode, elements, r)
}

// measureWarm primes one session outside the timer and re-runs it
// inside, so the measurement covers only the reset-and-reuse path.
func measureWarm(phantom string, workers int, im *pi2m.Image) Case {
	s, err := pi2m.NewSession(
		pi2m.WithThreads(workers),
		pi2m.WithLivelockTimeout(time.Minute),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background(), im); err != nil {
		log.Fatal(err)
	}
	elements := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := s.Run(context.Background(), im)
			if err != nil {
				log.Fatal(err)
			}
			elements = res.Elements()
		}
	})
	return newCase(phantom, "warm", elements, r)
}

func newCase(phantom, mode string, elements int, r testing.BenchmarkResult) Case {
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	cellsPerSec := 0.0
	if nsPerOp > 0 {
		cellsPerSec = float64(elements) / (nsPerOp / 1e9)
	}
	return Case{
		Phantom:     phantom,
		Mode:        mode,
		Iterations:  r.N,
		NsPerOp:     nsPerOp,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		CellsPerSec: cellsPerSec,
		Elements:    elements,
	}
}

// pctDelta is the warm-relative-to-cold change in percent.
func pctDelta(warm, cold float64) float64 {
	if cold == 0 {
		return 0
	}
	return 100 * (warm - cold) / cold
}
