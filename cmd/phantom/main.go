// Command phantom builds the synthetic segmented images that stand in
// for the paper's input atlases (Table 3) and prints their anatomy:
// dimensions, tissue volumes, and surface-voxel counts. With -slice it
// renders an ASCII cross-section for quick inspection.
//
//	phantom -name abdominal -scale 64 -slice 32
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	pi2m "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phantom: ")

	var (
		name  = flag.String("name", "abdominal", "phantom: sphere|torus|abdominal|knee|headneck|vessels")
		scale = flag.Int("scale", 64, "edge length in voxels")
		slice = flag.Int("slice", -1, "print an ASCII z-slice at this index (-1 = middle, -2 = none)")
		out   = flag.String("o", "", "write the phantom as an NRRD label image")
	)
	flag.Parse()

	var im *pi2m.Image
	switch *name {
	case "sphere":
		im = pi2m.SpherePhantom(*scale)
	case "torus":
		im = pi2m.TorusPhantom(*scale)
	case "abdominal":
		im = pi2m.AbdominalPhantom(*scale, *scale, 2*(*scale)/3)
	case "knee":
		im = pi2m.KneePhantom(*scale, *scale, *scale)
	case "headneck":
		im = pi2m.HeadNeckPhantom(*scale, *scale, *scale)
	case "vessels":
		im = pi2m.VesselPhantom(*scale)
	default:
		log.Fatalf("unknown phantom %q", *name)
	}

	fmt.Printf("%s: %dx%dx%d voxels, spacing %gx%gx%g\n",
		*name, im.NX, im.NY, im.NZ, im.Spacing.X, im.Spacing.Y, im.Spacing.Z)

	vols := im.LabelVolumes()
	var labels []int
	total := 0
	for l, v := range vols {
		labels = append(labels, int(l))
		total += v
	}
	sort.Ints(labels)
	fmt.Printf("foreground: %d voxels (%.1f%%), %d tissues\n",
		total, 100*float64(total)/float64(im.NumVoxels()), len(labels))
	for _, l := range labels {
		fmt.Printf("  tissue %d: %d voxels\n", l, vols[pi2m.Label(l)])
	}
	fmt.Printf("surface voxels: %d\n", len(im.SurfaceVoxels()))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := pi2m.WriteNRRD(f, im); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *slice != -2 {
		k := *slice
		if k < 0 {
			k = im.NZ / 2
		}
		if k >= im.NZ {
			log.Fatalf("slice %d out of range (NZ=%d)", k, im.NZ)
		}
		fmt.Printf("\nz-slice %d:\n", k)
		glyphs := ".123456789abcdef"
		for j := 0; j < im.NY; j++ {
			row := make([]byte, im.NX)
			for i := 0; i < im.NX; i++ {
				l := int(im.At(i, j, k))
				if l >= len(glyphs) {
					l = len(glyphs) - 1
				}
				row[i] = glyphs[l]
			}
			fmt.Println(string(row))
		}
	}
}
