// Command meshinfo inspects a tetrahedral VTK mesh produced by pi2m
// (or any legacy-ASCII tetrahedral VTK): element counts, per-tissue
// breakdown, quality statistics with histograms, and the boundary
// surface's topology.
//
//	meshinfo mesh.vtk
//	meshinfo -hist mesh.vtk
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"

	pi2m "repro"
	"repro/internal/geom"
	"repro/internal/quality"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshinfo: ")
	hist := flag.Bool("hist", false, "print quality histograms")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: meshinfo [-hist] mesh.vtk")
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	m, err := pi2m.ReadVTK(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d vertices, %d tetrahedra\n", flag.Arg(0), len(m.Verts), len(m.Cells))

	if len(m.Labels) > 0 {
		perLabel := map[int]int{}
		for _, l := range m.Labels {
			perLabel[l]++
		}
		var labels []int
		for l := range perLabel {
			labels = append(labels, l)
		}
		sort.Ints(labels)
		fmt.Println("tissues:")
		for _, l := range labels {
			fmt.Printf("  label %d: %d cells\n", l, perLabel[l])
		}
	}

	// Quality sweep.
	var (
		worstRatio        float64
		minDih, maxDih    = math.Inf(1), math.Inf(-1)
		volume, minVol    = 0.0, math.Inf(1)
		dihHist           = quality.NewHistogram(0, 180, 18)
		ratioHist         = quality.NewHistogram(0, 3, 15)
		inverted, degener int
	)
	pos := func(i int32) geom.Vec3 { return m.Verts[i] }
	for _, c := range m.Cells {
		a, b, cc, d := pos(c[0]), pos(c[1]), pos(c[2]), pos(c[3])
		v := geom.TetraVolume(a, b, cc, d)
		volume += v
		if v < minVol {
			minVol = v
		}
		if v < 0 {
			inverted++
		}
		r := geom.RadiusEdgeRatio(a, b, cc, d)
		if math.IsInf(r, 1) {
			degener++
			continue
		}
		ratioHist.Add(r)
		if r > worstRatio {
			worstRatio = r
		}
		lo, hi := geom.MinMaxDihedral(a, b, cc, d)
		dihHist.Add(lo)
		dihHist.Add(hi)
		if lo < minDih {
			minDih = lo
		}
		if hi > maxDih {
			maxDih = hi
		}
	}
	fmt.Printf("volume: %.6g (min cell %.3g, %d inverted, %d degenerate)\n",
		volume, minVol, inverted, degener)
	fmt.Printf("quality: max radius-edge %.3f, dihedral range (%.2f°, %.2f°)\n",
		worstRatio, minDih, maxDih)

	// Boundary topology: faces appearing once across all cells.
	type fkey [3]int32
	faceCount := map[fkey]int{}
	norm := func(a, b, c int32) fkey {
		k := fkey{a, b, c}
		sort.Slice(k[:], func(i, j int) bool { return k[i] < k[j] })
		return k
	}
	for _, c := range m.Cells {
		faceCount[norm(c[0], c[1], c[2])]++
		faceCount[norm(c[0], c[1], c[3])]++
		faceCount[norm(c[0], c[2], c[3])]++
		faceCount[norm(c[1], c[2], c[3])]++
	}
	var tris []pi2m.Triangle
	for k, n := range faceCount {
		if n == 1 {
			tris = append(tris, pi2m.Triangle{A: pos(k[0]), B: pos(k[1]), C: pos(k[2])})
		}
	}
	topo := pi2m.SurfaceTopology(tris)
	fmt.Printf("boundary: %s\n", topo)

	if *hist {
		fmt.Println("\nradius-edge ratio distribution:")
		fmt.Print(ratioHist)
		fmt.Println("\nextreme dihedral angle distribution:")
		fmt.Print(dihHist)
	}
}
