// Command experiments regenerates the paper's evaluation tables and
// figures at host scale:
//
//	experiments -run table1           # contention manager comparison (Table 1)
//	experiments -run fig5             # strong scaling RWS vs HWS (Figure 5)
//	experiments -run table4a          # weak scaling, abdominal (Table 4a)
//	experiments -run table4b          # weak scaling, knee (Table 4b)
//	experiments -run table5           # hyper-threading model (Table 5)
//	experiments -run fig6             # overhead timeline (Figure 6)
//	experiments -run table6           # single-threaded comparison (Table 6)
//	experiments -run all
//
// Flags -scale, -threads and -repeats size the runs for the host.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		run     = flag.String("run", "all", "experiment: table1|fig5|table4a|table4b|table5|fig6|table6|all")
		scale   = flag.Int("scale", 96, "phantom edge length in voxels")
		threads = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		repeats = flag.Int("repeats", 1, "average timings over this many runs")
		timeout = flag.Duration("livelock-timeout", 60*time.Second, "watchdog for livelock-prone managers")
		csvDir  = flag.String("csv", "", "also write plot-ready CSV files into this directory")
	)
	flag.Parse()

	var ths []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			log.Fatalf("bad -threads value %q", part)
		}
		ths = append(ths, n)
	}
	p := experiments.Params{
		ImageScale:      *scale,
		Threads:         ths,
		Repeats:         *repeats,
		LivelockTimeout: *timeout,
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	writeCSV := func(name string, fn func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*csvDir + "/" + name)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s/%s\n", *csvDir, name)
	}

	if want("table1") {
		ran = true
		rows, err := experiments.Table1(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable1(rows))
		writeCSV("table1.csv", func(w io.Writer) error { return experiments.Table1CSV(w, rows) })
	}
	if want("fig5") {
		ran = true
		rows, err := experiments.Fig5(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFig5(rows))
		writeCSV("fig5.csv", func(w io.Writer) error { return experiments.Fig5CSV(w, rows) })
	}
	if want("table4a") {
		ran = true
		rows, err := experiments.Table4(p, "abdominal")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable4(rows, "abdominal phantom"))
		writeCSV("table4a.csv", func(w io.Writer) error { return experiments.Table4CSV(w, rows) })
	}
	if want("table4b") {
		ran = true
		rows, err := experiments.Table4(p, "knee")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable4(rows, "knee phantom"))
		writeCSV("table4b.csv", func(w io.Writer) error { return experiments.Table4CSV(w, rows) })
	}
	if want("table5") {
		ran = true
		rows, err := experiments.Table5(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable5(rows))
		writeCSV("table5.csv", func(w io.Writer) error { return experiments.Table5CSV(w, rows) })
	}
	if want("fig6") {
		ran = true
		pts, err := experiments.Fig6(p)
		if err != nil {
			log.Fatal(err)
		}
		maxT := 0
		for _, n := range ths {
			if n > maxT {
				maxT = n
			}
		}
		fmt.Print(experiments.FormatFig6Threads(pts, maxT))
		writeCSV("fig6.csv", func(w io.Writer) error { return experiments.Fig6CSV(w, pts) })
	}
	if want("table6") {
		ran = true
		rows, err := experiments.Table6(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable6(rows))
		writeCSV("table6.csv", func(w io.Writer) error { return experiments.Table6CSV(w, rows) })
	}
	if !ran {
		log.Printf("unknown experiment %q", *run)
		flag.Usage()
		os.Exit(2)
	}
}
