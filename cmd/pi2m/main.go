// Command pi2m meshes a segmented phantom image and reports quality,
// fidelity, and performance statistics — the end-to-end PI2M pipeline
// of the paper.
//
//	pi2m -phantom abdominal -scale 96 -workers 4 -o mesh.vtk -surface surf.off
//
// The phantom flag selects the synthetic stand-in for the paper's
// input images (Table 3): sphere, torus, abdominal, knee, headneck.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	pi2m "repro"
	"repro/internal/edt"
	"repro/internal/meshio"
	"repro/internal/quality"
	"repro/internal/render"
)

func buildPhantom(name string, scale int) (*pi2m.Image, error) {
	switch name {
	case "sphere":
		return pi2m.SpherePhantom(scale), nil
	case "torus":
		return pi2m.TorusPhantom(scale), nil
	case "abdominal":
		return pi2m.AbdominalPhantom(scale, scale, 2*scale/3), nil
	case "knee":
		return pi2m.KneePhantom(scale, scale, scale), nil
	case "headneck":
		return pi2m.HeadNeckPhantom(scale, scale, scale), nil
	case "vessels":
		return pi2m.VesselPhantom(scale), nil
	}
	return nil, fmt.Errorf("unknown phantom %q", name)
}

// writeTo opens path and streams through fn — every exporter below is
// io.Writer-based, so files, pipes and buffers all work the same way.
func writeTo(path string, fn func(w *os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pi2m: ")

	var (
		inFile   = flag.String("in", "", "mesh a segmented uint8 NRRD label image instead of a phantom")
		phantom  = flag.String("phantom", "sphere", "input phantom: sphere|torus|abdominal|knee|headneck|vessels")
		scale    = flag.Int("scale", 64, "phantom edge length in voxels")
		workers  = flag.Int("workers", 0, "refinement threads (0 = GOMAXPROCS)")
		delta    = flag.Float64("delta", 0, "δ sampling parameter in voxels (0 = 2 voxels)")
		size     = flag.Float64("size", 0, "uniform size bound sf(.) in voxels (0 = none)")
		cmName   = flag.String("cm", "local", "contention manager: aggressive|random|global|local")
		balancer = flag.String("balancer", "hws", "load balancer: rws|hws")
		outVTK   = flag.String("o", "", "write the tetrahedral mesh as legacy VTK")
		outOFF   = flag.String("surface", "", "write the boundary triangulation as OFF")
		outPNG   = flag.String("png", "", "render a mid-height cross-section to PNG")
		fidelity = flag.Bool("fidelity", true, "compute the Hausdorff distance")
		smoothIt = flag.Int("smooth", 0, "volume-conserving Taubin smoothing iterations for the output")
		verbose  = flag.Bool("v", false, "print refinement progress")
		clean    = flag.Int("clean", 0, "remove segmentation islands smaller than this many voxels")
		down     = flag.Int("downsample", 0, "halve the image resolution this many times before meshing")
		timeout  = flag.Duration("timeout", 0, "cancel the run after this long, keeping the partial mesh (0 = none)")
		fseed    = flag.Int64("fault-seed", 0, "enable the deterministic fault-injection harness with this seed (0 = off)")
		frate    = flag.Float64("fault-rate", 0.01, "per-check fire probability for injected faults (with -fault-seed)")
	)
	flag.Parse()

	var im *pi2m.Image
	var err error
	if *inFile != "" {
		im, err = pi2m.ReadNRRDFile(*inFile)
	} else {
		im, err = buildPhantom(*phantom, *scale)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *clean > 0 {
		n := im.RemoveIslands(*clean)
		fmt.Printf("cleanup: relabeled %d island voxels\n", n)
	}
	for i := 0; i < *down; i++ {
		im = im.Downsample()
	}

	opts := []pi2m.Option{
		pi2m.WithThreads(*workers),
		pi2m.WithDelta(*delta),
		pi2m.WithContentionManager(*cmName),
		pi2m.WithBalancer(*balancer),
		pi2m.WithLivelockTimeout(2 * time.Minute),
	}
	if *fseed != 0 {
		opts = append(opts, pi2m.WithFaultInjection(*fseed, *frate))
		fmt.Printf("fault injection: seed %d, rate %g\n", *fseed, *frate)
	}
	if *size > 0 {
		opts = append(opts, pi2m.WithSizeFunc(pi2m.SizeFunc(pi2m.UniformSize(*size))))
	}
	if *verbose {
		opts = append(opts, pi2m.WithProgress(func(p pi2m.Progress) {
			fmt.Printf("  ... %8.2fs: %d operations, %d elements\n",
				p.Wall.Seconds(), p.Operations, p.Elements)
		}, 0))
	}

	session, err := pi2m.NewSession(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := session.Run(ctx, im)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range res.Transitions {
		fmt.Printf("degradation: [%8.2fs] %s: %s\n", tr.Wall.Seconds(), tr.Event, tr.Detail)
	}
	switch res.Status {
	case pi2m.StatusAborted:
		// A partial mesh is still written below; make the cause loud.
		log.Printf("run aborted: %v — the outputs below are PARTIAL", res.Err())
		if res.Livelocked {
			log.Printf("hint: the degradation ladder was exhausted; try -cm local or fewer workers")
		}
	case pi2m.StatusDegraded:
		st := res.Stats
		log.Printf("run degraded: %d recovered panics, %d dropped items, %d callback panics",
			st.RecoveredPanics, st.DroppedItems, st.CallbackPanics)
	}
	if res.Elements() == 0 {
		log.Fatal("no elements were produced; nothing to report or write")
	}

	name := *phantom
	if *inFile != "" {
		name = *inFile
	}
	fmt.Printf("input: %s %dx%dx%d (%d tissues)\n",
		name, im.NX, im.NY, im.NZ, len(im.LabelVolumes()))
	fmt.Printf("elements: %d (%.0f per second)\n", res.Elements(), res.ElementsPerSecond())
	fmt.Printf("time: total %v (EDT %v, refine %v)\n",
		res.TotalTime.Round(time.Millisecond),
		res.EDTTime.Round(time.Millisecond),
		res.RefineTime.Round(time.Millisecond))
	st := res.Stats
	fmt.Printf("operations: %d insertions, %d removals, %d rollbacks\n",
		st.Inserts, st.Removals, st.Rollbacks)
	fmt.Printf("rules: R1=%d R2=%d R3=%d R4=%d R5=%d R6=%d\n",
		st.RuleCounts[1], st.RuleCounts[2], st.RuleCounts[3],
		st.RuleCounts[4], st.RuleCounts[5], st.RuleCounts[6])

	if *workers != 1 {
		e := res.Energy(pi2m.DefaultEnergyModel())
		fmt.Printf("energy model: %.1f J busy-wait, %.1f J with DVFS idling (%.0f%% saved), %.0f elements/J\n",
			e.BusyWaitJoules, e.DVFSJoules, 100*e.SavingsFraction, e.ElementsPerJouleDVFS)
	}

	q := res.Quality()
	fmt.Printf("quality: max radius-edge %.3f, dihedral (%.1f°, %.1f°), min boundary angle %.1f°\n",
		q.MaxRadiusEdge, q.MinDihedral, q.MaxDihedral, q.MinBoundaryPlanarAngle)

	tris := res.Boundary()
	fmt.Printf("boundary: %d triangles\n", len(tris))
	if *fidelity {
		tr := edt.Compute(im, *workers)
		m2s, s2m := quality.Hausdorff(tris, im, tr)
		fmt.Printf("fidelity: Hausdorff mesh→surface %.2f, surface→mesh %.2f (voxels)\n", m2s, s2m)
	}

	if *outVTK != "" {
		if *smoothIt > 0 {
			sm := pi2m.Extract(res.Mesh, res.Final, im)
			st := sm.Taubin(*smoothIt, 0.5, -0.53)
			fmt.Printf("smoothing: roughness -%.1f%%, volume drift %+.3f%%\n",
				100*st.RoughnessDrop, 100*(st.VolumeAfter-st.VolumeBefore)/st.VolumeBefore)
			raw := &pi2m.RawMesh{Verts: sm.Verts, Cells: sm.Cells}
			for _, l := range sm.Labels {
				raw.Labels = append(raw.Labels, int(l))
			}
			err = writeTo(*outVTK, func(w *os.File) error { return pi2m.WriteVTKRaw(w, raw) })
		} else {
			err = writeTo(*outVTK, func(w *os.File) error {
				return pi2m.WriteVTK(w, res.Mesh, res.Final, im)
			})
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outVTK)
	}
	if *outOFF != "" {
		if err := writeTo(*outOFF, func(w *os.File) error { return pi2m.WriteOFF(w, tris) }); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outOFF)
	}
	if *outPNG != "" {
		ext := pi2m.Extract(res.Mesh, res.Final, im)
		raw := &meshio.RawMesh{Verts: ext.Verts, Cells: ext.Cells}
		for _, l := range ext.Labels {
			raw.Labels = append(raw.Labels, int(l))
		}
		_, hi := im.Bounds()
		if err := render.WritePNGFile(*outPNG, raw, render.Options{Z: hi.Z / 2}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPNG)
	}
}
