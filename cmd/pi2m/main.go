// Command pi2m meshes a segmented phantom image and reports quality,
// fidelity, and performance statistics — the end-to-end PI2M pipeline
// of the paper.
//
//	pi2m -phantom abdominal -scale 96 -workers 4 -o mesh.vtk -surface surf.off
//
// The phantom flag selects the synthetic stand-in for the paper's
// input images (Table 3): sphere, torus, abdominal, knee, headneck.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/edt"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/meshio"
	"repro/internal/quality"
	"repro/internal/render"
	"repro/internal/smooth"
)

func buildPhantom(name string, scale int) (*img.Image, error) {
	switch name {
	case "sphere":
		return img.SpherePhantom(scale), nil
	case "torus":
		return img.TorusPhantom(scale), nil
	case "abdominal":
		return img.AbdominalPhantom(scale, scale, 2*scale/3), nil
	case "knee":
		return img.KneePhantom(scale, scale, scale), nil
	case "headneck":
		return img.HeadNeckPhantom(scale, scale, scale), nil
	case "vessels":
		return img.VesselPhantom(scale), nil
	}
	return nil, fmt.Errorf("unknown phantom %q", name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pi2m: ")

	var (
		inFile   = flag.String("in", "", "mesh a segmented uint8 NRRD label image instead of a phantom")
		phantom  = flag.String("phantom", "sphere", "input phantom: sphere|torus|abdominal|knee|headneck|vessels")
		scale    = flag.Int("scale", 64, "phantom edge length in voxels")
		workers  = flag.Int("workers", 0, "refinement threads (0 = GOMAXPROCS)")
		delta    = flag.Float64("delta", 0, "δ sampling parameter in voxels (0 = 2 voxels)")
		size     = flag.Float64("size", 0, "uniform size bound sf(.) in voxels (0 = none)")
		cmName   = flag.String("cm", "local", "contention manager: aggressive|random|global|local")
		balancer = flag.String("balancer", "hws", "load balancer: rws|hws")
		outVTK   = flag.String("o", "", "write the tetrahedral mesh as legacy VTK")
		outOFF   = flag.String("surface", "", "write the boundary triangulation as OFF")
		outPNG   = flag.String("png", "", "render a mid-height cross-section to PNG")
		fidelity = flag.Bool("fidelity", true, "compute the Hausdorff distance")
		smoothIt = flag.Int("smooth", 0, "volume-conserving Taubin smoothing iterations for the output")
		verbose  = flag.Bool("v", false, "print refinement progress")
		clean    = flag.Int("clean", 0, "remove segmentation islands smaller than this many voxels")
		down     = flag.Int("downsample", 0, "halve the image resolution this many times before meshing")
		timeout  = flag.Duration("timeout", 0, "cancel the run after this long, keeping the partial mesh (0 = none)")
		fseed    = flag.Int64("fault-seed", 0, "enable the deterministic fault-injection harness with this seed (0 = off)")
		frate    = flag.Float64("fault-rate", 0.01, "per-check fire probability for injected faults (with -fault-seed)")
	)
	flag.Parse()

	if *fseed != 0 {
		faultinject.Enable(faultinject.New(faultinject.Config{
			Seed: *fseed,
			Rates: map[faultinject.Point]float64{
				faultinject.LockDeny:    *frate,
				faultinject.WorkerPanic: *frate / 10,
				faultinject.DropSteal:   *frate,
				faultinject.CommitDelay: *frate / 10,
			},
			// Keep the virtual-box bootstrap deterministic-clean; the
			// storm targets refinement.
			After: map[faultinject.Point]int64{
				faultinject.LockDeny:    500,
				faultinject.WorkerPanic: 20,
			},
		}))
		fmt.Printf("fault injection: seed %d, rate %g\n", *fseed, *frate)
	}

	var im *img.Image
	var err error
	if *inFile != "" {
		im, err = img.ReadNRRDFile(*inFile)
	} else {
		im, err = buildPhantom(*phantom, *scale)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *clean > 0 {
		n := im.RemoveIslands(*clean)
		fmt.Printf("cleanup: relabeled %d island voxels\n", n)
	}
	for i := 0; i < *down; i++ {
		im = im.Downsample()
	}

	cfg := core.Config{
		Image:             im,
		Workers:           *workers,
		Delta:             *delta,
		ContentionManager: *cmName,
		Balancer:          *balancer,
		LivelockTimeout:   2 * time.Minute,
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Context = ctx
	}
	if *size > 0 {
		s := *size
		cfg.SizeFunc = func(geom.Vec3) float64 { return s }
	}
	if *verbose {
		cfg.Progress = func(p core.Progress) {
			fmt.Printf("  ... %8.2fs: %d operations, %d elements\n",
				p.Wall.Seconds(), p.Operations, p.Elements)
		}
	}

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range res.Transitions {
		fmt.Printf("degradation: [%8.2fs] %s: %s\n", tr.Wall.Seconds(), tr.Event, tr.Detail)
	}
	switch res.Status {
	case core.StatusAborted:
		// A partial mesh is still written below; make the cause loud.
		log.Printf("run aborted: %v — the outputs below are PARTIAL", res.Err())
		if res.Livelocked {
			log.Printf("hint: the degradation ladder was exhausted; try -cm local or fewer workers")
		}
	case core.StatusDegraded:
		st := res.Stats
		log.Printf("run degraded: %d recovered panics, %d dropped items, %d callback panics",
			st.RecoveredPanics, st.DroppedItems, st.CallbackPanics)
	}
	if res.Elements() == 0 {
		log.Fatal("no elements were produced; nothing to report or write")
	}

	name := *phantom
	if *inFile != "" {
		name = *inFile
	}
	fmt.Printf("input: %s %dx%dx%d (%d tissues)\n",
		name, im.NX, im.NY, im.NZ, len(im.LabelVolumes()))
	fmt.Printf("elements: %d (%.0f per second)\n", res.Elements(), res.ElementsPerSecond())
	fmt.Printf("time: total %v (EDT %v, refine %v)\n",
		res.TotalTime.Round(time.Millisecond),
		res.EDTTime.Round(time.Millisecond),
		res.RefineTime.Round(time.Millisecond))
	st := res.Stats
	fmt.Printf("operations: %d insertions, %d removals, %d rollbacks\n",
		st.Inserts, st.Removals, st.Rollbacks)
	fmt.Printf("rules: R1=%d R2=%d R3=%d R4=%d R5=%d R6=%d\n",
		st.RuleCounts[1], st.RuleCounts[2], st.RuleCounts[3],
		st.RuleCounts[4], st.RuleCounts[5], st.RuleCounts[6])

	if *workers != 1 {
		e := res.Energy(core.DefaultEnergyModel())
		fmt.Printf("energy model: %.1f J busy-wait, %.1f J with DVFS idling (%.0f%% saved), %.0f elements/J\n",
			e.BusyWaitJoules, e.DVFSJoules, 100*e.SavingsFraction, e.ElementsPerJouleDVFS)
	}

	q := quality.Evaluate(res.Mesh, res.Final, im)
	fmt.Printf("quality: max radius-edge %.3f, dihedral (%.1f°, %.1f°), min boundary angle %.1f°\n",
		q.MaxRadiusEdge, q.MinDihedral, q.MaxDihedral, q.MinBoundaryPlanarAngle)

	tris := quality.BoundaryTriangles(res.Mesh, res.Final, im)
	fmt.Printf("boundary: %d triangles\n", len(tris))
	if *fidelity {
		tr := edt.Compute(im, *workers)
		m2s, s2m := quality.Hausdorff(tris, im, tr)
		fmt.Printf("fidelity: Hausdorff mesh→surface %.2f, surface→mesh %.2f (voxels)\n", m2s, s2m)
	}

	if *outVTK != "" {
		if *smoothIt > 0 {
			sm := smooth.Extract(res.Mesh, res.Final, im)
			st := sm.Taubin(*smoothIt, 0.5, -0.53)
			fmt.Printf("smoothing: roughness -%.1f%%, volume drift %+.3f%%\n",
				100*st.RoughnessDrop, 100*(st.VolumeAfter-st.VolumeBefore)/st.VolumeBefore)
			raw := &meshio.RawMesh{Verts: sm.Verts, Cells: sm.Cells}
			for _, l := range sm.Labels {
				raw.Labels = append(raw.Labels, int(l))
			}
			if err := meshio.WriteVTKRawFile(*outVTK, raw); err != nil {
				log.Fatal(err)
			}
		} else if err := meshio.WriteVTKFile(*outVTK, res.Mesh, res.Final, im); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outVTK)
	}
	if *outOFF != "" {
		if err := meshio.WriteOFFFile(*outOFF, tris); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outOFF)
	}
	if *outPNG != "" {
		ext := smooth.Extract(res.Mesh, res.Final, im)
		raw := &meshio.RawMesh{Verts: ext.Verts, Cells: ext.Cells}
		for _, l := range ext.Labels {
			raw.Labels = append(raw.Labels, int(l))
		}
		_, hi := im.Bounds()
		if err := render.WritePNGFile(*outPNG, raw, render.Options{Z: hi.Z / 2}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPNG)
	}
}
